"""Tests for the labeled graph data model."""

import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, GraphBuilder, forward, inverse


@pytest.fixture
def small_graph():
    return (
        GraphBuilder()
        .node("a", "Person")
        .node("b", "Person")
        .node("c", "City")
        .edge("a", "knows", "b")
        .edge("a", "livesIn", "c")
        .edge("b", "livesIn", "c")
        .build()
    )


class TestConstruction:
    def test_add_node_with_labels(self):
        graph = Graph()
        graph.add_node("n", ["A", "B"])
        assert graph.labels("n") == {"A", "B"}

    def test_add_node_is_idempotent(self):
        graph = Graph()
        graph.add_node("n", ["A"])
        graph.add_node("n", ["B"])
        assert graph.labels("n") == {"A", "B"}

    def test_nodes_may_be_unlabeled(self):
        graph = Graph()
        graph.add_node("n")
        assert graph.labels("n") == frozenset()

    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge("a", "r", "b")
        assert graph.has_node("a") and graph.has_node("b")
        assert graph.has_edge("a", "r", "b")

    def test_parallel_edges_with_different_labels(self):
        graph = Graph()
        graph.add_edge("a", "r", "b")
        graph.add_edge("a", "s", "b")
        assert graph.edge_count() == 2

    def test_duplicate_edge_not_counted_twice(self):
        graph = Graph()
        graph.add_edge("a", "r", "b")
        graph.add_edge("a", "r", "b")
        assert graph.edge_count() == 1

    def test_invalid_label_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_label("n", "")
        with pytest.raises(GraphError):
            graph.add_edge("a", "", "b")

    def test_labels_of_unknown_node_raises(self):
        with pytest.raises(GraphError):
            Graph().labels("missing")


class TestTraversal:
    def test_forward_successors(self, small_graph):
        assert small_graph.successors("a", "knows") == {"b"}

    def test_inverse_successors(self, small_graph):
        assert small_graph.successors("c", inverse("livesIn")) == {"a", "b"}

    def test_successors_accept_signed_labels(self, small_graph):
        assert small_graph.successors("a", forward("knows")) == {"b"}

    def test_missing_successors_empty(self, small_graph):
        assert small_graph.successors("c", "knows") == frozenset()

    def test_neighbours_cover_both_directions(self, small_graph):
        neighbours = dict()
        for label, other in small_graph.neighbours("b"):
            neighbours.setdefault(str(label), set()).add(other)
        assert neighbours == {"knows-": {"a"}, "livesIn": {"c"}}

    def test_degree(self, small_graph):
        assert small_graph.degree("a") == 2
        assert small_graph.degree("c") == 2

    def test_nodes_with_label(self, small_graph):
        assert set(small_graph.nodes_with_label("Person")) == {"a", "b"}

    def test_node_and_edge_labels(self, small_graph):
        assert small_graph.node_labels() == {"Person", "City"}
        assert small_graph.edge_labels() == {"knows", "livesIn"}


class TestMutation:
    def test_remove_edge(self, small_graph):
        small_graph.remove_edge("a", "knows", "b")
        assert not small_graph.has_edge("a", "knows", "b")

    def test_remove_node_removes_incident_edges(self, small_graph):
        small_graph.remove_node("c")
        assert not small_graph.has_node("c")
        assert small_graph.successors("a", "livesIn") == frozenset()

    def test_merge_nodes_unions_labels_and_edges(self, small_graph):
        small_graph.merge_nodes("a", "b")
        assert small_graph.labels("a") == {"Person"}
        assert small_graph.has_edge("a", "knows", "a")
        assert small_graph.has_edge("a", "livesIn", "c")
        assert not small_graph.has_node("b")

    def test_merge_preserves_self_loops(self):
        graph = Graph()
        graph.add_edge("x", "r", "y")
        graph.add_edge("y", "r", "x")
        graph.merge_nodes("x", "y")
        assert graph.has_edge("x", "r", "x")

    def test_relabel_nodes(self, small_graph):
        renamed = small_graph.relabel_nodes({"a": "a2"})
        assert renamed.has_edge("a2", "knows", "b")
        assert not renamed.has_node("a")

    def test_union(self):
        left = GraphBuilder().edge("a", "r", "b").build()
        right = GraphBuilder().edge("b", "s", "c").build()
        union = left.union(right)
        assert union.has_edge("a", "r", "b") and union.has_edge("b", "s", "c")


class TestDerived:
    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add_edge("a", "knows", "c")
        assert not small_graph.has_edge("a", "knows", "c")

    def test_subgraph(self, small_graph):
        sub = small_graph.subgraph({"a", "b"})
        assert sub.has_edge("a", "knows", "b")
        assert not sub.has_node("c")

    def test_connected_components(self):
        graph = GraphBuilder().edge("a", "r", "b").node("lonely", "A").build()
        components = sorted(map(sorted, graph.connected_components()))
        assert components == [["a", "b"], ["lonely"]]

    def test_is_connected(self, small_graph):
        assert small_graph.is_connected()

    def test_equality_by_structure(self):
        left = GraphBuilder().node("a", "A").edge("a", "r", "b").build()
        right = GraphBuilder().edge("a", "r", "b").node("a", "A").build()
        assert left == right

    def test_inequality_on_labels(self):
        left = GraphBuilder().node("a", "A").build()
        right = GraphBuilder().node("a", "B").build()
        assert left != right

    def test_counts_and_len(self, small_graph):
        assert small_graph.node_count() == len(small_graph) == 3
        assert small_graph.edge_count() == 3

    def test_describe_mentions_labels(self, small_graph):
        text = small_graph.describe()
        assert "Person" in text and "knows" in text


class TestBuilder:
    def test_path(self):
        graph = GraphBuilder().path(["a", "b", "c"], "next").build()
        assert graph.has_edge("a", "next", "b") and graph.has_edge("b", "next", "c")
        assert graph.edge_count() == 2

    def test_cycle(self):
        graph = GraphBuilder().cycle(["a", "b", "c"], "next").build()
        assert graph.has_edge("c", "next", "a")
        assert graph.edge_count() == 3

    def test_nodes_bulk(self):
        graph = GraphBuilder().nodes(["a", "b"], "Person").build()
        assert set(graph.nodes_with_label("Person")) == {"a", "b"}

    def test_edges_bulk(self):
        graph = GraphBuilder().edges([("a", "r", "b"), ("b", "r", "c")]).build()
        assert graph.edge_count() == 2
