"""The serving layer: coalescing semantics, fingerprint identity against the
serial engine, transport behaviour (HTTP and stdio) and lifecycle ordering.

The central invariant extends the backend one: however requests reach the
engine — one client or many, coalesced or per-request, serial or process
backend, store on or off — every response must carry the exact
``result_fingerprint`` a bare serial ``check_many`` produces for the same
request."""

import json
import threading
import urllib.error
import urllib.request
from io import StringIO

import pytest

from repro.engine import ContainmentEngine, result_fingerprint
from repro.rpq.parser import parse_c2rpq
from repro.service import (
    ContainmentService,
    RequestCoalescer,
    ServiceError,
    make_server,
    serve_stdio,
)
from repro.workloads import medical
from repro.workloads.streams import closed_loop, request_payloads, request_stream


def _fingerprints(results):
    return [result_fingerprint(result) for result in results]


@pytest.fixture(scope="module")
def small_stream():
    return request_stream(24, length=3)


@pytest.fixture(scope="module")
def stream_baseline(small_stream):
    with ContainmentEngine() as engine:
        results = engine.check_many([(left, right, schema) for left, right, schema in small_stream])
    return _fingerprints(results)


def _drive(service, stream, clients=6):
    """Closed-loop clients over *stream*; returns per-request fingerprints."""
    results = closed_loop(
        stream,
        lambda request: service.coalescer.check(request[0], request[1], request[2]),
        clients=clients,
    )
    return _fingerprints(results)


# --------------------------------------------------------------------------- #
# the tentpole invariant: service == serial engine, bit for bit
# --------------------------------------------------------------------------- #
def test_coalesced_service_matches_serial_fingerprints(small_stream, stream_baseline):
    with ContainmentService(coalesce_window=0.01, max_batch=16) as service:
        assert _drive(service, small_stream) == stream_baseline
        stats = service.coalescer.stats
        assert stats.submitted == len(small_stream)
        assert stats.batches < len(small_stream)  # concurrency really coalesced
        assert stats.deduplicated > 0  # the stream's hot repeats merged


def test_process_backend_service_with_persist_matches_serial(
    tmp_path, small_stream, stream_baseline
):
    """The full serving stack — coalescer, process pool, persistent store —
    answers bit-identically to the serial engine, and its verdicts land on
    disk for the next process to warm-start from."""
    store_path = tmp_path / "service-store.db"
    with ContainmentService(
        parallel="process", workers=2, persist=store_path, coalesce_window=0.01, max_batch=16
    ) as service:
        assert _drive(service, small_stream) == stream_baseline
        assert service.engine.stats.store.writes > 0
    # the store outlives the service: a cold engine replays from disk
    with ContainmentEngine(persist=store_path) as reader:
        results = reader.check_many(
            [(left, right, schema) for left, right, schema in small_stream]
        )
        assert _fingerprints(results) == stream_baseline
        assert reader.stats.store.hits > 0


# --------------------------------------------------------------------------- #
# coalescer edge cases
# --------------------------------------------------------------------------- #
def test_duplicate_in_flight_requests_are_decided_once():
    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := (designTarget)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    engine = ContainmentEngine()
    with RequestCoalescer(engine, window=0.05, max_batch=32) as coalescer:
        futures = [coalescer.submit(left, right, schema) for _ in range(6)]
        results = [future.result(timeout=30) for future in futures]
    assert len({result_fingerprint(result) for result in results}) == 1
    assert coalescer.stats.submitted == 6
    assert coalescer.stats.unique == 1
    assert coalescer.stats.deduplicated == 5
    # one engine call decided all six (the others shared the leader)
    assert engine.stats.contains_calls == 1
    engine.close()


def test_window_closing_on_a_single_request_flushes_it():
    """An "empty" window — nobody else showed up — must not delay or drop
    the lone request."""
    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := (designTarget)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    with ContainmentEngine() as engine:
        with RequestCoalescer(engine, window=0.005, max_batch=64) as coalescer:
            result = coalescer.check(left, right, schema, timeout=30)
            assert result.contained
            assert coalescer.stats.batches == 1
            assert coalescer.stats.largest_batch == 1


def test_oversized_waves_split_into_max_batch_chunks(small_stream):
    with ContainmentEngine() as engine:
        with RequestCoalescer(engine, window=0.2, max_batch=4) as coalescer:
            futures = [
                coalescer.submit(left, right, schema) for left, right, schema in small_stream
            ]
            for future in futures:
                future.result(timeout=60)
    stats = coalescer.stats
    assert stats.largest_batch <= 4
    assert stats.batches >= len(small_stream) // 4
    assert stats.submitted == len(small_stream)


def test_zero_window_disables_waiting():
    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := (designTarget)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    with ContainmentEngine() as engine:
        with RequestCoalescer(engine, window=0.0, max_batch=1) as coalescer:
            for _ in range(3):
                coalescer.check(left, right, schema, timeout=30)
            assert coalescer.stats.largest_batch == 1
            assert coalescer.stats.batches == 3


def test_closed_coalescer_rejects_submissions_but_drains_in_flight():
    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := (designTarget)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    with ContainmentEngine() as engine:
        coalescer = RequestCoalescer(engine, window=0.05, max_batch=8)
        future = coalescer.submit(left, right, schema)
        coalescer.close()
        assert future.result(timeout=30).contained  # accepted before close: answered
        with pytest.raises(RuntimeError, match="has been closed"):
            coalescer.submit(left, right, schema)
        coalescer.close()  # idempotent


def test_engine_failures_reach_every_waiting_future():
    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := (designTarget)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    engine = ContainmentEngine()
    engine.close()  # a dead engine: check_many raises use-after-close
    coalescer = RequestCoalescer(engine, window=0.02, max_batch=8)
    futures = [coalescer.submit(left, right, schema) for _ in range(2)]
    for future in futures:
        with pytest.raises(RuntimeError, match="has been closed"):
            future.result(timeout=30)
    coalescer.close()


def test_coalescer_validates_its_parameters():
    with ContainmentEngine() as engine:
        with pytest.raises(ValueError, match="window"):
            RequestCoalescer(engine, window=-0.001)
        with pytest.raises(ValueError, match="max_batch"):
            RequestCoalescer(engine, max_batch=0)


# --------------------------------------------------------------------------- #
# the service facade: payload parsing, rendering, lifecycle
# --------------------------------------------------------------------------- #
def test_service_parses_payloads_and_caches_schema_text():
    payloads = request_payloads(8, length=3)
    with ContainmentService() as service:
        responses = service.handle_many(payloads)
        assert all(len(response["fingerprint"]) == 64 for response in responses)
        parse_stats = service.stats_report()["service"]["parse_caches"]
        # four distinct schema texts, repeated across eight requests
        assert parse_stats["parsed-schemas"]["hits"] > 0


def test_service_accepts_builtin_workload_payloads():
    with ContainmentService() as service:
        response = service.handle(
            {
                "workload": "medical",
                "left": "p(x) := (designTarget)(x, y)",
                "right": "q(x) := Vaccine(x)",
                "id": "req-1",
            }
        )
    assert response["contained"] is True
    assert response["id"] == "req-1"


@pytest.mark.parametrize(
    "payload, message",
    [
        ({"left": "p(x) := A(x)", "right": "q(x) := A(x)"}, "schema"),
        ({"schema": "schema S { nodes A; }", "right": "q(x) := A(x)"}, "left"),
        ({"schema": "not a schema", "left": "p(x) := A(x)", "right": "q(x) := A(x)"}, "parse"),
        ({"workload": "nope", "left": "p(x) := A(x)", "right": "q(x) := A(x)"}, "workload"),
        ({"schema": 7, "left": "p(x) := A(x)", "right": "q(x) := A(x)"}, "DSL"),
        (
            {"workload": "synthetic", "length": "4", "left": "p(x) := A(x)",
             "right": "q(x) := A(x)"},
            "length",
        ),
        (
            {"workload": "synthetic", "length": [4], "left": "p(x) := A(x)",
             "right": "q(x) := A(x)"},
            "length",
        ),
    ],
)
def test_service_rejects_malformed_payloads(payload, message):
    with ContainmentService() as service:
        with pytest.raises(ServiceError, match=message):
            service.submit(payload)
        # malformed requests never reach the coalescer
        assert service.coalescer.stats.submitted == 0


def test_closed_service_rejects_requests():
    service = ContainmentService()
    service.close()
    with pytest.raises(RuntimeError, match="has been closed"):
        service.submit({"workload": "medical", "left": "p(x) := A(x)", "right": "q(x) := A(x)"})
    assert service.healthz()["status"] == "closed"
    service.close()  # idempotent
    with pytest.raises(RuntimeError, match="has been closed"):
        with service:
            pass  # pragma: no cover


def test_service_borrowing_an_engine_leaves_it_open():
    with ContainmentEngine() as engine:
        service = ContainmentService(engine=engine)
        service.handle(
            {"workload": "medical", "left": "p(x) := (designTarget)(x, y)",
             "right": "q(x) := Vaccine(x)"}
        )
        service.close()
        assert not engine.closed  # the borrower must not tear down its host
        assert engine.stats.contains_calls == 1


# --------------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------------- #
@pytest.fixture()
def http_server():
    service = ContainmentService(coalesce_window=0.005, max_batch=16)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def test_http_contain_healthz_and_stats(http_server):
    url = http_server.url
    payloads = request_payloads(6, length=3)

    status, response = _post(url + "/contain", payloads[0])
    assert status == 200
    assert len(response["fingerprint"]) == 64

    status, batch = _post(url + "/batch", {"requests": payloads})
    assert status == 200
    assert len(batch["results"]) == len(payloads)

    with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
        health = json.loads(response.read())
    assert health["status"] == "ok"
    assert health["requests"] >= 1 + len(payloads)

    with urllib.request.urlopen(url + "/stats", timeout=30) as response:
        stats = json.loads(response.read())
    assert stats["coalescer"]["submitted"] >= 1 + len(payloads)
    assert "engine" in stats and "service" in stats


def test_http_concurrent_clients_match_serial_fingerprints(
    http_server, small_stream, stream_baseline
):
    url = http_server.url
    payloads = request_payloads(24, length=3)  # the same stream, as wire payloads
    responses = closed_loop(
        payloads, lambda payload: _post(url + "/contain", payload), clients=6
    )
    assert all(status == 200 for status, _ in responses)
    assert [response["fingerprint"] for _, response in responses] == stream_baseline


def test_http_error_responses(http_server):
    url = http_server.url
    with pytest.raises(urllib.error.HTTPError) as bad_request:
        _post(url + "/contain", {"left": "p(x) := A(x)"})
    assert bad_request.value.code == 400
    assert "error" in json.loads(bad_request.value.read())

    with pytest.raises(urllib.error.HTTPError) as not_found:
        _post(url + "/nope", {})
    assert not_found.value.code == 404

    with pytest.raises(urllib.error.HTTPError) as bad_batch:
        _post(url + "/batch", {"not-requests": []})
    assert bad_batch.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as unknown_get:
        urllib.request.urlopen(url + "/unknown", timeout=30)
    assert unknown_get.value.code == 404

    empty = urllib.request.Request(url + "/contain", data=b"", method="POST")
    with pytest.raises(urllib.error.HTTPError) as empty_body:
        urllib.request.urlopen(empty, timeout=30)
    assert empty_body.value.code == 400


def test_http_server_close_without_serve_forever_does_not_deadlock():
    service = ContainmentService()
    server = make_server(service)
    server.close()  # serve_forever never ran; must not hang on shutdown()
    assert service.closed


def test_closed_loop_driver_surfaces_client_failures():
    def flaky(item):
        if item == 2:
            raise ValueError("boom")
        return item * 10

    with pytest.raises(RuntimeError, match="failed on item 2") as failure:
        closed_loop([0, 1, 2, 3], flaky, clients=2)
    assert isinstance(failure.value.__cause__, ValueError)
    assert closed_loop([0, 1, 2], lambda item: item + 1, clients=2) == [1, 2, 3]
    with pytest.raises(ValueError, match="at least one client"):
        closed_loop([1], lambda item: item, clients=0)


# --------------------------------------------------------------------------- #
# stdio transport
# --------------------------------------------------------------------------- #
def test_stdio_answers_in_input_order_with_control_ops(stream_baseline):
    payloads = request_payloads(24, length=3)
    lines = [json.dumps(payload) for payload in payloads]
    lines.insert(0, json.dumps({"op": "healthz"}))
    lines.append("definitely not json")
    lines.append(json.dumps({"op": "stats"}))
    lines.append(json.dumps({"op": "shutdown"}))
    output = StringIO()
    with ContainmentService(coalesce_window=0.002, max_batch=8) as service:
        counts = serve_stdio(service, StringIO("\n".join(lines) + "\n"), output)
    responses = [json.loads(line) for line in output.getvalue().splitlines()]

    assert counts["requests"] == len(payloads)
    assert responses[0]["status"] == "ok"  # healthz first, order preserved
    body = responses[1 : 1 + len(payloads)]
    assert [response["fingerprint"] for response in body] == stream_baseline
    assert "invalid JSON line" in responses[1 + len(payloads)]["error"]
    assert "coalescer" in responses[2 + len(payloads)]
    assert responses[-1] == {"ok": True}
    assert counts["errors"] == 1


def test_stdio_reports_unknown_ops_and_bad_payloads():
    lines = [
        json.dumps({"op": "conquer"}),
        json.dumps([1, 2, 3]),
        json.dumps({"op": "check", "left": "p(x) := A(x)"}),
        json.dumps({"op": "shutdown"}),
    ]
    output = StringIO()
    with ContainmentService() as service:
        serve_stdio(service, StringIO("\n".join(lines) + "\n"), output)
    responses = [json.loads(line) for line in output.getvalue().splitlines()]
    assert "unknown op" in responses[0]["error"]
    assert "JSON object" in responses[1]["error"]
    assert "schema" in responses[2]["error"]
    assert responses[3] == {"ok": True}


def test_service_constructor_failure_closes_its_own_engine(tmp_path):
    """A half-built service must not leak the engine (or its store handle)."""
    store_path = tmp_path / "leak-check.db"
    with pytest.raises(ValueError, match="unknown backend"):
        ContainmentService(parallel="warp", persist=store_path)
    # the store file is closed and re-openable read-write immediately
    with ContainmentEngine(persist=store_path) as engine:
        assert not engine.store.disabled


def test_handle_many_rejects_malformed_batches_before_any_work():
    with ContainmentService() as service:
        good = {"workload": "medical", "left": "p(x) := (designTarget)(x, y)",
                "right": "q(x) := Vaccine(x)"}
        with pytest.raises(ServiceError, match="missing the 'right' query"):
            service.handle_many([good, {"workload": "medical", "left": "p(x) := A(x)"}])
        # the valid payload was never queued: nothing reached the coalescer
        assert service.coalescer.stats.submitted == 0


def test_oversized_wave_overflow_flushes_without_a_fresh_window():
    schema = medical.source_schema()
    lefts = [parse_c2rpq(f"p{i}(x) := (designTarget)(x, y)") for i in range(5)]
    right = parse_c2rpq("q(x) := Vaccine(x)")
    with ContainmentEngine() as engine:
        # a window far longer than the test: if the overflow waited a fresh
        # window per tail item, the waits alone would exceed the timeout
        with RequestCoalescer(engine, window=5.0, max_batch=2) as coalescer:
            futures = [coalescer.submit(left, right, schema) for left in lefts]
            import time as _time

            started = _time.perf_counter()
            for future in futures:
                future.result(timeout=30)
            elapsed = _time.perf_counter() - started
    assert coalescer.stats.batches >= 3  # 5 requests through batches of <= 2
    assert elapsed < 10.0, "overflow batches waited fresh coalescing windows"


def test_duplicate_waiters_get_independent_witness_copies():
    """A duplicate's counterexample graph is the client's to mutate — never
    shared with another waiter or with the engine's cached object."""
    from repro.containment import ContainmentConfig

    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := Antigen(x)")  # not contained: carries a counterexample
    right = parse_c2rpq("q(x) := Vaccine(x)")
    config = ContainmentConfig(search_finite_counterexample=True)
    with ContainmentEngine() as engine:
        with RequestCoalescer(engine, window=0.05, max_batch=8) as coalescer:
            futures = [coalescer.submit(left, right, schema, config) for _ in range(3)]
            results = [future.result(timeout=30) for future in futures]
    assert len({result_fingerprint(result) for result in results}) == 1
    graphs = [result.finite_counterexample.graph for result in results]
    assert graphs[0] is not graphs[1] and graphs[1] is not graphs[2]


def test_http_invalid_content_length_is_a_400_not_a_500(http_server):
    """A malformed Content-Length (duplicate headers folded by a proxy) must
    be a client error, and the desynced connection must not be reused."""
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", http_server.port, timeout=30)
    try:
        connection.putrequest("POST", "/contain")
        connection.putheader("Content-Length", "67, 67")
        connection.endheaders()
        connection.send(b"x" * 67)
        response = connection.getresponse()
        assert response.status == 400
        assert "Content-Length" in json.loads(response.read())["error"]
        assert response.will_close  # the body was never read: no keep-alive
    finally:
        connection.close()
