"""Tests for the EXPTIME lower-bound machinery (Appendix F): ATMs, the
reduction devices and the reductions of Lemma F.2."""

import pytest

from repro.analysis import check_equivalence, type_check
from repro.containment import ContainmentSolver
from repro.exceptions import ReproError
from repro.hardness import (
    alternating_and_or_machine,
    build_instance,
    containment_to_equivalence,
    containment_to_typechecking,
    even_ones_machine,
    nest,
    tree_device_queries,
    tree_device_schema,
)
from repro.rpq import parse_c2rpq, parse_regex, satisfies
from repro.schema import conforms
from repro.graph import GraphBuilder


class TestATMs:
    def test_even_ones_accepts_even_counts(self):
        machine = even_ones_machine()
        assert machine.accepts("")
        assert machine.accepts("11")
        assert machine.accepts("0110")
        assert machine.accepts("10100")
        assert not machine.accepts("1")
        assert not machine.accepts("10110")

    def test_alternating_machine(self):
        machine = alternating_and_or_machine()
        assert machine.accepts("11")
        assert machine.accepts("110")
        assert not machine.accepts("10")
        assert not machine.accepts("01")
        assert not machine.accepts("0")

    def test_space_bound_checked(self):
        with pytest.raises(ReproError):
            even_ones_machine().accepts("111", space=1)

    def test_states_listing_is_stable(self):
        machine = even_ones_machine()
        assert machine.states[0] == machine.initial_state
        assert machine.states[-2:] == ("q_yes", "q_no")

    def test_work_alphabet_includes_markers(self):
        machine = even_ones_machine()
        assert {"<", ">", "_"} <= set(machine.work_alphabet)

    def test_successor_computation(self):
        machine = even_ones_machine()
        configuration = machine.initial_configuration("10", 2)
        successors = machine.successors(configuration)
        assert successors and all(s[1] == 2 for s in successors)


class TestDevices:
    def test_nesting_device(self):
        expr = nest(parse_regex("Node"), parse_regex("a1"))
        assert str(expr) == "Node . a1 . a1-"

    def test_tree_device_schema_allows_binary_trees(self):
        schema = tree_device_schema()
        tree = (
            GraphBuilder()
            .node("root", "Node").node("l", "Leaf").node("r", "Leaf")
            .edge("root", "a1", "l").edge("root", "a2", "r")
            .build()
        )
        assert conforms(tree, schema)

    def test_tree_device_positive_query_on_tree(self):
        positive, negative = tree_device_queries()
        tree = (
            GraphBuilder()
            .node("root", "Node").node("l", "Leaf").node("r", "Leaf")
            .edge("root", "a1", "l").edge("root", "a2", "r")
            .build()
        )
        assert satisfies(tree, positive.boolean())
        assert not satisfies(tree, negative.boolean())

    def test_tree_device_negative_query_flags_violations(self):
        positive, negative = tree_device_queries()
        bad = (
            GraphBuilder()
            .node("root", "Node").node("n", "Node").node("l", "Leaf")
            .edge("root", "a1", "n").edge("root", "a1", "l")  # two a1-children
            .build()
        )
        assert satisfies(bad, negative.boolean())


class TestReduction:
    def test_instance_sizes_polynomial(self):
        machine = alternating_and_or_machine()
        small = build_instance(machine, "11", space=2).sizes()
        large = build_instance(machine, "1100", space=4).sizes()
        assert small["schema_edge_labels"] < large["schema_edge_labels"]
        # the construction is polynomial: doubling the space must not blow the
        # query size up by more than a small polynomial factor
        assert large["positive_size"] <= 20 * small["positive_size"]
        assert large["negative_size"] <= 20 * small["negative_size"]

    def test_instance_queries_are_single_atom_booleans(self):
        instance = build_instance(even_ones_machine(), "1", space=1)
        assert instance.positive.is_boolean() and instance.negative.is_boolean()
        assert len(instance.positive.atoms) == 1 and len(instance.negative.atoms) == 1
        assert instance.positive.is_acyclic() and instance.negative.is_acyclic()

    def test_reduction_queries_are_hash_seed_independent(self):
        """The generated query text must not depend on PYTHONHASHSEED: union
        branch order decides downstream automaton state numbering and hence
        result fingerprints, which must match across separate processes."""
        import subprocess
        import sys

        script = (
            "from repro.hardness import build_instance, alternating_and_or_machine\n"
            "inst = build_instance(alternating_and_or_machine(), '10', space=2)\n"
            "print(inst.positive.atoms[0].regex)\n"
            "print(inst.negative.atoms[0].regex)\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for seed in ("0", "1", "42")
        }
        assert len(outputs) == 1

    def test_schema_shape_matches_figure_7(self):
        instance = build_instance(even_ones_machine(), "10", space=2)
        assert instance.schema.node_labels == {"Config", "Pos", "Symb", "St"}
        assert {"all1", "all2", "any1", "any2", "pos1", "pos2"} <= instance.schema.edge_labels

    def test_run_tree_encoding_satisfies_positive_query_fragments(self):
        """A hand-built one-configuration graph exercises the macros: the
        Symbol/State macros must be satisfied exactly at the encoding nodes."""
        machine = alternating_and_or_machine()
        instance = build_instance(machine, "1", space=1)
        graph = GraphBuilder().node("c", "Config").node("p", "Pos").node("s", "Symb").node("st", "St").build()
        graph.add_edge("c", "pos1", "p")
        graph.add_edge("p", "sym_1", "s")
        graph.add_edge("p", f"st_{machine.initial_state}", "st")
        # Symbol_{1,'1'} = Config[pos1 · sym_1] must hold exactly at the Config node
        from repro.rpq import concat, edge, eval_regex, node

        macro = nest(node("Config"), concat(edge("pos1"), edge("sym_1")))
        assert eval_regex(macro, graph) == {("c", "c")}
        state_macro = nest(node("Config"), concat(edge("pos1"), edge(f"st_{machine.initial_state}")))
        assert eval_regex(state_macro, graph) == {("c", "c")}
        assert instance.schema is not None


class TestLemmaF2Reductions:
    def test_containment_to_equivalence(self, medical_source_schema):
        held = (
            parse_c2rpq("p(x) := Vaccine(x)"),
            parse_c2rpq("q(x) := (designTarget)(x, y)"),
        )
        failed = (
            parse_c2rpq("p(x) := Antigen(x)"),
            parse_c2rpq("q(x) := (crossReacting)(x, y)"),
        )
        for (left, right), expected in [(held, True), (failed, False)]:
            first, second, schema = containment_to_equivalence(medical_source_schema, left, right)
            result = check_equivalence(first, second, schema)
            solver = ContainmentSolver(medical_source_schema)
            assert solver.contains(left, right).contained is expected
            assert result.equivalent is expected

    def test_containment_to_typechecking(self, medical_source_schema):
        left = parse_c2rpq("p(x) := (designTarget)(x, y)")
        right = parse_c2rpq("q(x) := (designTarget . crossReacting*)(x, y)")
        transformation, source, target = containment_to_typechecking(
            medical_source_schema, left, right
        )
        assert type_check(transformation, source, target).well_typed

    def test_containment_to_typechecking_negative(self, medical_source_schema):
        left = parse_c2rpq("p(x) := Antigen(x)")
        right = parse_c2rpq("q(x) := (crossReacting)(x, y)")
        transformation, source, target = containment_to_typechecking(
            medical_source_schema, left, right
        )
        assert not type_check(transformation, source, target).well_typed
