"""Tests for CI entailment (Corollary E.7) and cycle reversing (Section 5)."""

import pytest

from repro.containment import (
    complete,
    entails_at_most,
    entails_exists,
    label_set_satisfiable,
    schema_has_finmod_cycle,
    simplify_s_driven,
    triple_satisfiable,
)
from repro.containment.cycle_reversal import CompletionConfig
from repro.dl import (
    AtMostOneCI,
    ExistsCI,
    ForAllCI,
    TBox,
    conj,
    schema_to_extended_tbox,
)
from repro.graph import forward, inverse
from repro.schema import Schema
from repro.workloads import medical, synthetic


@pytest.fixture(scope="module")
def medical_tbox():
    return schema_to_extended_tbox(medical.source_schema())


class TestEntailment:
    def test_syntactic_statement_is_entailed(self, medical_tbox):
        assert entails_exists(medical_tbox, ["Vaccine"], forward("designTarget"), ["Antigen"])
        assert entails_at_most(medical_tbox, ["Vaccine"], forward("designTarget"), ["Antigen"])

    def test_non_entailed_statement(self, medical_tbox):
        assert not entails_exists(medical_tbox, ["Antigen"], forward("crossReacting"), ["Antigen"])
        assert not entails_at_most(medical_tbox, ["Antigen"], forward("crossReacting"), ["Antigen"])

    def test_entailment_strengthened_body(self, medical_tbox):
        # K ⊑ ∃R.K' is entailed for any K containing Vaccine
        assert entails_exists(
            medical_tbox, ["Vaccine", "ExtraConcept"], forward("designTarget"), ["Antigen"]
        )

    def test_entailment_weakened_head(self, medical_tbox):
        # the required successor class may be weakened (Antigen ⊆ ⊤)
        assert entails_exists(medical_tbox, ["Vaccine"], forward("designTarget"), [])

    def test_derived_entailment_through_forall(self):
        # A ⊑ ∃s.A plus B ⊑ ∀s.B entails A⊓B ⊑ ∃s.(A⊓B) — the composite
        # entailment at the heart of Example 5.5
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("s"), conj("A")),
                ForAllCI(conj("B"), forward("s"), conj("B")),
            ]
        )
        assert entails_exists(tbox, ["A", "B"], forward("s"), ["A", "B"])
        assert not entails_exists(tbox, ["A"], forward("s"), ["A", "B"])

    def test_vacuous_entailment_for_unsatisfiable_body(self, medical_tbox):
        assert entails_exists(
            medical_tbox, ["Vaccine", "Antigen"], forward("exhibits"), ["Pathogen"]
        )

    def test_label_set_satisfiability(self, medical_tbox):
        assert label_set_satisfiable(medical_tbox, ["Pathogen"])
        assert not label_set_satisfiable(medical_tbox, ["Pathogen", "Vaccine"])

    def test_triple_satisfiability(self, medical_tbox):
        assert triple_satisfiable(medical_tbox, ["Vaccine"], forward("designTarget"), ["Antigen"])
        assert not triple_satisfiable(medical_tbox, ["Vaccine"], forward("exhibits"), ["Antigen"])
        assert triple_satisfiable(medical_tbox, ["Antigen"], inverse("designTarget"), ["Vaccine"])


class TestFinmodCycleDetection:
    def test_medical_schema_has_no_cycle(self, medical_source_schema):
        assert not schema_has_finmod_cycle(medical_source_schema)

    def test_example_52_schema_has_cycle(self, example52_schema):
        assert schema_has_finmod_cycle(example52_schema)

    def test_cycle_requires_inverse_functionality(self):
        schema = Schema(["A"], ["s"], name="NoFunc")
        schema.set_edge("A", "s", "A", "+", "*")  # no "at most one incoming"
        assert not schema_has_finmod_cycle(schema)

    def test_longer_label_cycles_detected(self):
        assert schema_has_finmod_cycle(synthetic.cycle_schema(3))
        assert schema_has_finmod_cycle(synthetic.cycle_schema(5))

    def test_chain_schema_has_no_cycle(self):
        assert not schema_has_finmod_cycle(synthetic.chain_schema(4))


class TestCompletion:
    def test_skipped_when_no_cycle_possible(self, medical_tbox, medical_source_schema):
        result = complete(medical_tbox, medical_source_schema)
        assert result.skipped
        assert result.tbox.size() == medical_tbox.size()

    def test_example_52_completion_adds_reversal(self, example52_schema):
        tbox = schema_to_extended_tbox(example52_schema)
        result = complete(tbox, example52_schema)
        assert not result.skipped
        assert result.reversed_cycles >= 1
        # the single-label reversal A ⊑ ∃s⁻.A must have been added
        assert ExistsCI(conj("A"), inverse("s"), conj("A")) in result.tbox
        assert AtMostOneCI(conj("A"), forward("s"), conj("A")) in result.tbox

    def test_completion_is_monotone(self, example52_schema):
        tbox = schema_to_extended_tbox(example52_schema)
        result = complete(tbox, example52_schema)
        assert set(tbox.statements()) <= set(result.tbox.statements())

    def test_completion_respects_budget(self, example52_schema):
        tbox = schema_to_extended_tbox(example52_schema)
        config = CompletionConfig(max_candidates=4, max_rounds=1)
        result = complete(tbox, example52_schema, config=config)
        assert result.rounds <= 1
        assert result.candidate_count <= 4

    def test_cycle_schema_completion(self):
        schema = synthetic.cycle_schema(2)
        tbox = schema_to_extended_tbox(schema)
        result = complete(tbox, schema, config=CompletionConfig(max_candidates=12, max_rounds=2))
        assert result.reversed_cycles >= 1
        assert ExistsCI(conj("L1"), inverse("next"), conj("L0")) in result.tbox


class TestSDrivenSimplification:
    def test_composite_at_most_subsumed_by_single(self, medical_source_schema):
        tbox = TBox(
            [
                AtMostOneCI(conj("Vaccine"), forward("designTarget"), conj("Antigen")),
                AtMostOneCI(conj("Vaccine", "Extra"), forward("designTarget"), conj("Antigen", "More")),
            ]
        )
        simplify_s_driven(tbox, medical_source_schema)
        assert tbox.at_most_count() == 1

    def test_unrelated_composite_kept(self, medical_source_schema):
        tbox = TBox(
            [AtMostOneCI(conj("Vaccine", "Extra"), forward("targets"), conj("Antigen"))]
        )
        simplify_s_driven(tbox, medical_source_schema)
        assert tbox.at_most_count() == 1

    def test_bound_matches_lemma_57(self, example52_schema):
        tbox = schema_to_extended_tbox(example52_schema)
        completed = complete(tbox, example52_schema).tbox
        bound = 2 * len(example52_schema.edge_labels) * len(example52_schema.node_labels) ** 2
        single_label_at_most = [
            s for s in completed.at_most_statements()
            if len(s.body) == 1 and len(s.head) == 1
            and s.body <= example52_schema.node_labels and s.head <= example52_schema.node_labels
        ]
        assert len(single_label_at_most) <= bound
