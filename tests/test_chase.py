"""Tests for the Horn-ALCIF chase: label sets, tree-extendability, pattern
consistency (the engine room of the satisfiability procedure)."""

import pytest

from repro.chase import ChaseEngine, TBoxIndex, TreeChecker
from repro.dl import (
    AtMostOneCI,
    ExistsCI,
    ForAllCI,
    NoExistsCI,
    SubclassOf,
    SubclassOfBottom,
    TBox,
    conj,
    schema_to_extended_tbox,
)
from repro.exceptions import SolverError
from repro.graph import GraphBuilder, forward, inverse
from repro.workloads import medical


@pytest.fixture(scope="module")
def medical_tbox():
    return schema_to_extended_tbox(medical.source_schema())


class TestTBoxIndex:
    def test_closure_under_subclass(self):
        index = TBoxIndex(TBox([SubclassOf(conj("A"), "B"), SubclassOf(conj("B"), "C")]))
        assert index.close({"A"}) == {"A", "B", "C"}
        assert index.close({"C"}) == {"C"}

    def test_closure_with_conjunctive_body(self):
        index = TBoxIndex(TBox([SubclassOf(conj("A", "B"), "C")]))
        assert "C" not in index.close({"A"})
        assert "C" in index.close({"A", "B"})

    def test_bottom_detection(self):
        index = TBoxIndex(TBox([SubclassOfBottom(conj("A", "B"))]))
        assert index.violates_bottom(frozenset({"A", "B", "C"}))
        assert not index.violates_bottom(frozenset({"A"}))

    def test_forall_targets(self):
        index = TBoxIndex(TBox([ForAllCI(conj("A"), forward("r"), conj("B", "C"))]))
        assert index.forall_targets(frozenset({"A"}), forward("r")) == {"B", "C"}
        assert index.forall_targets(frozenset({"X"}), forward("r")) == frozenset()

    def test_child_seed_includes_forall(self):
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("B")),
                ForAllCI(conj("A"), forward("r"), conj("C")),
                SubclassOf(conj("B"), "D"),
            ]
        )
        index = TBoxIndex(tbox)
        assert index.child_seed(frozenset({"A"}), forward("r"), conj("B")) == {"B", "C", "D"}

    def test_statistics(self, medical_tbox):
        stats = TBoxIndex(medical_tbox).statistics()
        assert stats["exists"] > 0 and stats["no_exists"] > 0 and stats["bottom"] > 0


class TestTreeChecker:
    def test_simple_existential_chain_is_extendable(self):
        tbox = TBox([ExistsCI(conj("A"), forward("r"), conj("A"))])
        checker = TreeChecker(TBoxIndex(tbox))
        assert checker.check(conj("A")).ok

    def test_unsatisfiable_requirement_fails(self):
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("B")),
                SubclassOfBottom(conj("B")),
            ]
        )
        checker = TreeChecker(TBoxIndex(tbox))
        assert not checker.check(conj("A")).ok

    def test_requirement_blocked_and_pushed_to_parent(self):
        # the child must have an r⁻-successor in B, the parent is the only
        # candidate because of the at-most constraint, so B is pushed upwards
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("C")),
                ExistsCI(conj("C"), inverse("r"), conj("B")),
                AtMostOneCI(conj("C"), inverse("r"), conj()),
            ]
        )
        checker = TreeChecker(TBoxIndex(tbox))
        outcome = checker.check(conj("C"), parent_role=inverse("r"), parent_labels=conj("A"))
        assert outcome.ok
        assert "B" in outcome.parent_needs

    def test_infinite_alternating_chain_allowed_coinductively(self):
        # A needs a B-successor, B needs an A-successor, A and B are disjoint:
        # only infinite chains work, which unrestricted satisfiability permits
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("B")),
                ExistsCI(conj("B"), forward("r"), conj("A")),
                SubclassOfBottom(conj("A", "B")),
                AtMostOneCI(conj("A"), forward("r"), conj()),
                AtMostOneCI(conj("B"), forward("r"), conj()),
            ]
        )
        checker = TreeChecker(TBoxIndex(tbox))
        assert checker.check(conj("A")).ok

    def test_no_a_predecessor_of_a_makes_a_unsatisfiable(self):
        # every A needs an A-successor via r, but no A may have an incoming
        # r-edge from an A: the requirement can never be witnessed
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("A")),
                NoExistsCI(conj("A"), inverse("r"), conj("A")),
            ]
        )
        checker = TreeChecker(TBoxIndex(tbox))
        assert not checker.check(conj("A")).ok

    def test_cache_grows(self):
        tbox = TBox([ExistsCI(conj("A"), forward("r"), conj("A"))])
        checker = TreeChecker(TBoxIndex(tbox))
        checker.check(conj("A"))
        assert checker.cache_size() >= 1


class TestChaseEngine:
    def test_requires_horn_tbox(self, medical_source_schema):
        from repro.dl import label_coverage_statement

        tbox = TBox([label_coverage_statement(["A", "B"])])
        with pytest.raises(SolverError):
            ChaseEngine(tbox)

    def test_saturation_propagates_labels(self):
        tbox = TBox(
            [
                SubclassOf(conj("A"), "B"),
                ForAllCI(conj("B"), forward("r"), conj("C")),
            ]
        )
        pattern = GraphBuilder().node("x", "A").node("y").edge("x", "r", "y").build()
        result = ChaseEngine(tbox).check_pattern(pattern)
        assert result.consistent
        assert result.pattern.has_label("y", "C")

    def test_bottom_violation_detected(self):
        tbox = TBox([SubclassOfBottom(conj("A", "B"))])
        pattern = GraphBuilder().node("x", "A", "B").build()
        result = ChaseEngine(tbox).check_pattern(pattern)
        assert not result.consistent
        assert "⊥" in result.reason or "bottom" in result.reason.lower()

    def test_no_exists_violation_detected(self):
        tbox = TBox([NoExistsCI(conj("A"), forward("r"), conj("B"))])
        pattern = GraphBuilder().node("x", "A").node("y", "B").edge("x", "r", "y").build()
        assert not ChaseEngine(tbox).check_pattern(pattern).consistent

    def test_functionality_merges_successors(self):
        tbox = TBox([AtMostOneCI(conj("A"), forward("r"), conj("B"))])
        pattern = (
            GraphBuilder()
            .node("x", "A").node("y1", "B").node("y2", "B")
            .edge("x", "r", "y1").edge("x", "r", "y2")
            .build()
        )
        result = ChaseEngine(tbox).check_pattern(pattern, {"y1": "y1", "y2": "y2"})
        assert result.consistent
        assert result.merges == 1
        assert result.assignment["y1"] == result.assignment["y2"]

    def test_functionality_merge_can_reveal_contradiction(self):
        tbox = TBox(
            [
                AtMostOneCI(conj("A"), forward("r"), conj()),
                SubclassOfBottom(conj("B", "C")),
            ]
        )
        pattern = (
            GraphBuilder()
            .node("x", "A").node("y1", "B").node("y2", "C")
            .edge("x", "r", "y1").edge("x", "r", "y2")
            .build()
        )
        assert not ChaseEngine(tbox).check_pattern(pattern).consistent

    def test_forced_reuse_propagates_labels(self):
        # x needs an r-successor in C; it already has the only allowed
        # r-successor y, so y must absorb C
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("C")),
                AtMostOneCI(conj("A"), forward("r"), conj()),
            ]
        )
        pattern = GraphBuilder().node("x", "A").node("y", "B").edge("x", "r", "y").build()
        result = ChaseEngine(tbox).check_pattern(pattern)
        assert result.consistent
        assert result.pattern.has_label("y", "C")

    def test_unwitnessable_requirement_fails(self):
        tbox = TBox(
            [
                ExistsCI(conj("A"), forward("r"), conj("B")),
                NoExistsCI(conj("A"), forward("r"), conj("B")),
            ]
        )
        pattern = GraphBuilder().node("x", "A").build()
        assert not ChaseEngine(tbox).check_pattern(pattern).consistent

    def test_medical_schema_pattern(self, medical_tbox):
        engine = ChaseEngine(medical_tbox)
        vaccine = GraphBuilder().node("v", "Vaccine").build()
        assert engine.check_pattern(vaccine).consistent
        # a node that is both Vaccine and Antigen contradicts disjointness
        assert not engine.label_set_is_satisfiable(conj("Vaccine", "Antigen"))

    def test_label_set_satisfiability(self, medical_tbox):
        engine = ChaseEngine(medical_tbox)
        assert engine.label_set_is_satisfiable(conj("Pathogen"))
        assert engine.label_set_is_satisfiable(conj("Antigen"))

    def test_example_55_cycle_reversal_argument(self):
        """The hand-derived contradiction of Example 5.5: after reversal, an
        r-self-loop is impossible in any (even infinite) model."""
        A, Br, Brs = "A", "B_r", "B_rs"
        tbox = TBox(
            [
                # T_S
                SubclassOf(conj(), A),
                ExistsCI(conj(A), forward("s"), conj(A)),
                AtMostOneCI(conj(A), inverse("s"), conj(A)),
                # T_¬Q (rolled-up q = ∃x,y.(r·s⁺·r)(x,y))
                ForAllCI(conj(), forward("r"), conj(Br)),
                ForAllCI(conj(Br), forward("s"), conj(Brs)),
                ForAllCI(conj(Brs), forward("s"), conj(Brs)),
                NoExistsCI(conj(Brs), forward("r"), conj()),
                # the reversal of the finmod cycle A⊓B_rs, s, A⊓B_rs
                ExistsCI(conj(A, Brs), inverse("s"), conj(A, Brs)),
                AtMostOneCI(conj(A, Brs), forward("s"), conj(A, Brs)),
            ]
        )
        loop = GraphBuilder().node("u").edge("u", "r", "u").build()
        assert not ChaseEngine(tbox).check_pattern(loop).consistent
        # without the reversal statements the loop is satisfiable in an
        # infinite model (this is exactly Example 5.2/5.3)
        without = TBox([s for s in tbox if s not in (
            ExistsCI(conj(A, Brs), inverse("s"), conj(A, Brs)),
            AtMostOneCI(conj(A, Brs), forward("s"), conj(A, Brs)),
        )])
        assert ChaseEngine(without).check_pattern(loop).consistent
