"""The deprecation shims: each emits exactly one ``DeprecationWarning`` per
use and still produces correct results.

One file for all of them (``nfa_cache_size`` on the engine and the worker
pool, the ``_build_nfa`` solver hook, the module-level ``trim`` alias), so
"what still warns" has a single home until the shims are removed.
"""

import warnings

from repro.containment.solver import ContainmentSolver
from repro.engine import ContainmentEngine
from repro.engine.parallel import WorkerPool
from repro.rpq import build_nfa, parse_regex
from repro.rpq.automaton import trim
from repro.workloads import medical


def _exactly_one_deprecation(recorded):
    deprecations = [w for w in recorded if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}: "
        f"{[str(w.message) for w in deprecations]}"
    )
    return deprecations[0]


def test_engine_nfa_cache_size_warns_once_and_is_honoured():
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        engine = ContainmentEngine(nfa_cache_size=7)
    warning = _exactly_one_deprecation(recorded)
    assert "automaton_cache_size" in str(warning.message)
    assert engine._automata.maxsize == 7


def test_worker_pool_nfa_cache_size_warns_once_and_is_honoured():
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        pool = WorkerPool(workers=1, nfa_cache_size=9)
    warning = _exactly_one_deprecation(recorded)
    assert "automaton_cache_size" in str(warning.message)
    assert pool._cache_sizes["automata"] == 9
    pool.close()  # never started; teardown is a no-op


def test_build_nfa_hook_warns_once_and_matches_the_compiled_bundle():
    solver = ContainmentSolver(medical.source_schema())
    regex = parse_regex("designTarget . crossReacting*")
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        nfa = solver._build_nfa(regex)
    warning = _exactly_one_deprecation(recorded)
    assert "_compile_automaton" in str(warning.message)
    # the shim resolves through the same memo as the modern hook
    assert nfa is solver._compile_automaton(regex).nfa


def test_build_nfa_via_super_warns_once_per_call_and_stays_correct():
    class LegacySolver(ContainmentSolver):
        def _build_nfa(self, regex):
            return super()._build_nfa(regex)

    solver = LegacySolver(medical.source_schema())
    regex = parse_regex("designTarget")
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        nfa = solver._compile_automaton(regex).nfa
    _exactly_one_deprecation(recorded)
    assert nfa.state_count() > 0


def test_module_level_trim_warns_once_and_matches_the_method():
    nfa = build_nfa(parse_regex("a . b"))
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        alias_result = trim(nfa)
    warning = _exactly_one_deprecation(recorded)
    assert "nfa.trim()" in str(warning.message)
    method_result = nfa.trim()
    assert alias_result.state_count() == method_result.state_count()


def test_modern_paths_emit_no_deprecation_warnings():
    """The supported APIs must stay silent — shims only warn when used."""
    schema = medical.source_schema()
    engine = ContainmentEngine(automaton_cache_size=16)
    solver = engine.solver(schema)
    regex = parse_regex("designTarget . crossReacting*")
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        solver._compile_automaton(regex)
        build_nfa(regex).trim()
    assert not [w for w in recorded if issubclass(w.category, DeprecationWarning)]
