"""The deprecation ledger: what is gone, and what still warns.

The PR 3/4 shims (``nfa_cache_size`` on the engine and the worker pool, the
``_build_nfa`` solver hook, the module-level ``trim`` alias) finished their
cycle and are removed — the first half of this file pins that down, so a
shim cannot quietly come back.  The second half covers the one *current*
deprecation: ``int(InvalidationReport)``, the back-compat bridge from
``invalidate_schema``'s former bare-``int`` return.
"""

import warnings

import pytest

from repro.containment.solver import ContainmentSolver
from repro.engine import ContainmentEngine, InvalidationReport
from repro.engine.parallel import WorkerPool
from repro.rpq import build_nfa, parse_regex
from repro.workloads import medical


def _exactly_one_deprecation(recorded):
    deprecations = [w for w in recorded if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}: "
        f"{[str(w.message) for w in deprecations]}"
    )
    return deprecations[0]


# --------------------------------------------------------------------------- #
# removed shims stay removed
# --------------------------------------------------------------------------- #
def test_engine_nfa_cache_size_is_gone():
    with pytest.raises(TypeError, match="nfa_cache_size"):
        ContainmentEngine(nfa_cache_size=7)


def test_worker_pool_nfa_cache_size_is_gone():
    with pytest.raises(TypeError, match="nfa_cache_size"):
        WorkerPool(workers=1, nfa_cache_size=9)


def test_build_nfa_solver_hook_is_gone():
    assert not hasattr(ContainmentSolver, "_build_nfa")


def test_module_level_trim_is_gone():
    import repro.rpq.automaton as automaton_module

    assert not hasattr(automaton_module, "trim")
    # the method replacement stays
    assert build_nfa(parse_regex("a . b")).trim().state_count() > 0


# --------------------------------------------------------------------------- #
# the current deprecation: int(InvalidationReport)
# --------------------------------------------------------------------------- #
def test_invalidation_report_int_warns_and_yields_the_result_count():
    report = InvalidationReport("f" * 64, results=3, completions=2, automata=5)
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        legacy = int(report)
    warning = _exactly_one_deprecation(recorded)
    assert "InvalidationReport" in str(warning.message)
    assert legacy == 3  # the former return value: dropped result entries


def test_invalidate_schema_returns_a_structured_report():
    schema = medical.source_schema()
    engine = ContainmentEngine()
    engine.solver(schema)  # warm nothing: invalidation of a cold schema is all zeros
    report = engine.invalidate_schema(schema)
    assert isinstance(report, InvalidationReport)
    assert report.schema_fingerprint == schema.canonical_fingerprint()
    assert report.total == 0 and report.store_rows == 0
    assert set(report.tier_counts()) == {"results", "completions", "schema-tboxes", "automata"}


def test_modern_paths_emit_no_deprecation_warnings():
    """The supported APIs must stay silent — only the shim warns when used."""
    schema = medical.source_schema()
    engine = ContainmentEngine(automaton_cache_size=16)
    solver = engine.solver(schema)
    regex = parse_regex("designTarget . crossReacting*")
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        solver._compile_automaton(regex)
        build_nfa(regex).trim()
        report = engine.invalidate_schema(schema)
        report.as_dict()
        report.summary()
        report.tier_counts()
    assert not [w for w in recorded if issubclass(w.category, DeprecationWarning)]
