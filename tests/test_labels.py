"""Tests for signed edge labels (Σ±)."""

import pytest

from repro.graph.labels import Direction, SignedLabel, forward, inverse, is_valid_label, signed_closure


class TestValidity:
    def test_plain_label_is_valid(self):
        assert is_valid_label("knows")

    def test_empty_label_is_invalid(self):
        assert not is_valid_label("")

    def test_whitespace_is_invalid(self):
        assert not is_valid_label("a b")

    def test_trailing_dash_is_reserved(self):
        assert not is_valid_label("knows-")

    def test_non_string_is_invalid(self):
        assert not is_valid_label(42)

    def test_signed_label_rejects_invalid(self):
        with pytest.raises(ValueError):
            SignedLabel("bad label")


class TestDirections:
    def test_forward_helper(self):
        label = forward("knows")
        assert label.label == "knows"
        assert not label.is_inverse

    def test_inverse_helper(self):
        label = inverse("knows")
        assert label.is_inverse

    def test_flip(self):
        assert Direction.FORWARD.flip() is Direction.INVERSE
        assert Direction.INVERSE.flip() is Direction.FORWARD

    def test_double_inverse_is_identity(self):
        label = forward("knows")
        assert label.inverse().inverse() == label

    def test_inverse_changes_direction_only(self):
        label = forward("knows").inverse()
        assert label.label == "knows"
        assert label.direction is Direction.INVERSE


class TestTextualForm:
    def test_str_forward(self):
        assert str(forward("knows")) == "knows"

    def test_str_inverse(self):
        assert str(inverse("knows")) == "knows-"

    def test_parse_forward(self):
        assert SignedLabel.parse("knows") == forward("knows")

    def test_parse_inverse(self):
        assert SignedLabel.parse("knows-") == inverse("knows")

    def test_parse_strips_whitespace(self):
        assert SignedLabel.parse("  knows ") == forward("knows")

    def test_round_trip(self):
        for label in (forward("a"), inverse("a")):
            assert SignedLabel.parse(str(label)) == label


class TestSignedClosure:
    def test_closure_has_both_directions(self):
        closure = set(signed_closure(["a", "b"]))
        assert closure == {forward("a"), inverse("a"), forward("b"), inverse("b")}

    def test_closure_of_empty_is_empty(self):
        assert list(signed_closure([])) == []

    def test_labels_are_ordered_and_hashable(self):
        assert len({forward("a"), forward("a")}) == 1
        assert sorted([inverse("b"), forward("a")]) == [forward("a"), inverse("b")]
