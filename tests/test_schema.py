"""Tests for schemas, multiplicities and conformance (Section 3)."""

import pytest

from repro.exceptions import SchemaError
from repro.graph import GraphBuilder
from repro.schema import Multiplicity, Schema, check_conformance, conforms
from repro.dl import conforms_via_tbox


class TestMultiplicity:
    def test_parse_all_symbols(self):
        assert Multiplicity.parse("?") is Multiplicity.OPTIONAL
        assert Multiplicity.parse("1") is Multiplicity.ONE
        assert Multiplicity.parse("+") is Multiplicity.PLUS
        assert Multiplicity.parse("*") is Multiplicity.STAR
        assert Multiplicity.parse("0") is Multiplicity.ZERO

    def test_parse_rejects_unknown(self):
        with pytest.raises(SchemaError):
            Multiplicity.parse("2")

    @pytest.mark.parametrize(
        "multiplicity,allowed,forbidden",
        [
            (Multiplicity.ZERO, [0], [1, 2]),
            (Multiplicity.ONE, [1], [0, 2]),
            (Multiplicity.OPTIONAL, [0, 1], [2]),
            (Multiplicity.PLUS, [1, 5], [0]),
            (Multiplicity.STAR, [0, 1, 7], []),
        ],
    )
    def test_allows(self, multiplicity, allowed, forbidden):
        for count in allowed:
            assert multiplicity.allows(count)
        for count in forbidden:
            assert not multiplicity.allows(count)

    def test_at_least_and_at_most_flags(self):
        assert Multiplicity.ONE.requires_at_least_one and Multiplicity.PLUS.requires_at_least_one
        assert Multiplicity.ONE.requires_at_most_one and Multiplicity.OPTIONAL.requires_at_most_one
        assert not Multiplicity.STAR.requires_at_least_one
        assert not Multiplicity.STAR.requires_at_most_one

    def test_containment_order(self):
        assert Multiplicity.ONE.is_at_most(Multiplicity.PLUS)
        assert Multiplicity.ONE.is_at_most(Multiplicity.OPTIONAL)
        assert Multiplicity.OPTIONAL.is_at_most(Multiplicity.STAR)
        assert Multiplicity.PLUS.is_at_most(Multiplicity.STAR)
        assert not Multiplicity.OPTIONAL.is_at_most(Multiplicity.PLUS)
        assert not Multiplicity.STAR.is_at_most(Multiplicity.PLUS)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Multiplicity.STAR.allows(-1)


class TestSchema:
    def test_declared_and_implicit_constraints(self, medical_source_schema):
        schema = medical_source_schema
        assert str(schema.multiplicity("Vaccine", "designTarget", "Antigen")) == "1"
        assert str(schema.multiplicity("Antigen", "designTarget-", "Vaccine")) == "*"
        # not mentioned -> implicitly forbidden (Example 3.1)
        assert schema.multiplicity("Vaccine", "exhibits", "Pathogen") is Multiplicity.ZERO

    def test_unknown_labels_rejected(self, medical_source_schema):
        with pytest.raises(SchemaError):
            medical_source_schema.multiplicity("Nope", "designTarget", "Antigen")
        with pytest.raises(SchemaError):
            medical_source_schema.multiplicity("Vaccine", "unknownEdge", "Antigen")

    def test_set_edge_declares_both_directions(self):
        schema = Schema(["A", "B"], ["r"])
        schema.set_edge("A", "r", "B", "1", "+")
        assert schema.multiplicity("A", "r", "B") is Multiplicity.ONE
        assert schema.multiplicity("B", "r-", "A") is Multiplicity.PLUS

    def test_forbids_edge(self, medical_source_schema):
        assert medical_source_schema.forbids_edge("Vaccine", "exhibits", "Pathogen")
        assert not medical_source_schema.forbids_edge("Vaccine", "designTarget", "Antigen")

    def test_allowed_edge_triples(self, medical_source_schema):
        triples = set(medical_source_schema.allowed_edge_triples())
        assert ("Vaccine", "designTarget", "Antigen") in triples
        assert ("Vaccine", "exhibits", "Antigen") not in triples

    def test_copy_and_equality(self, medical_source_schema):
        clone = medical_source_schema.copy()
        assert clone == medical_source_schema
        clone.set("Antigen", "crossReacting", "Antigen", "0")
        assert clone != medical_source_schema

    def test_restrict(self, medical_source_schema):
        restricted = medical_source_schema.restrict(["Vaccine", "Antigen"], ["designTarget"])
        assert restricted.node_labels == {"Vaccine", "Antigen"}
        assert restricted.edge_labels == {"designTarget"}
        assert restricted.multiplicity("Vaccine", "designTarget", "Antigen") is Multiplicity.ONE

    def test_describe_lists_constraints(self, medical_source_schema):
        text = medical_source_schema.describe()
        assert "designTarget" in text and "Vaccine" in text

    def test_empty_schema(self):
        schema = Schema([], [])
        assert schema.is_empty()


class TestConformance:
    def test_sample_graph_conforms(self, medical_graph, medical_source_schema):
        assert conforms(medical_graph, medical_source_schema)

    def test_dl_view_agrees(self, medical_graph, medical_source_schema):
        assert conforms_via_tbox(medical_graph, medical_source_schema)

    def test_unlabeled_node_rejected(self, medical_source_schema):
        graph = GraphBuilder().node("x").build()
        report = check_conformance(graph, medical_source_schema)
        assert not report.ok
        assert any(v.kind == "unlabeled-node" for v in report.violations)

    def test_multiple_labels_rejected(self, medical_source_schema):
        graph = GraphBuilder().node("x", "Vaccine", "Antigen").build()
        report = check_conformance(graph, medical_source_schema)
        assert any(v.kind == "multiple-node-labels" for v in report.violations)

    def test_foreign_node_label_rejected(self, medical_source_schema):
        graph = GraphBuilder().node("x", "Alien").build()
        report = check_conformance(graph, medical_source_schema)
        assert any(v.kind == "foreign-node-label" for v in report.violations)

    def test_foreign_edge_label_rejected(self, medical_source_schema):
        graph = (
            GraphBuilder().node("x", "Vaccine").node("y", "Antigen")
            .edge("x", "designTarget", "y").edge("x", "zaps", "y").build()
        )
        report = check_conformance(graph, medical_source_schema)
        assert any(v.kind == "foreign-edge-label" for v in report.violations)

    def test_missing_required_edge_rejected(self, medical_source_schema):
        # a Vaccine without its design target violates δ(Vaccine,designTarget,Antigen)=1
        graph = GraphBuilder().node("v", "Vaccine").build()
        report = check_conformance(graph, medical_source_schema)
        assert any(v.kind == "participation" for v in report.violations)

    def test_two_design_targets_rejected(self, medical_source_schema):
        graph = (
            GraphBuilder()
            .node("v", "Vaccine").node("a1", "Antigen").node("a2", "Antigen")
            .edge("v", "designTarget", "a1").edge("v", "designTarget", "a2")
            .build()
        )
        assert not conforms(graph, medical_source_schema)

    def test_forbidden_edge_rejected(self, medical_source_schema):
        graph = (
            GraphBuilder()
            .node("v", "Vaccine").node("a", "Antigen").node("p", "Pathogen")
            .edge("v", "designTarget", "a")
            .edge("p", "exhibits", "a")
            .edge("v", "exhibits", "a")  # vaccines may not exhibit antigens
            .build()
        )
        assert not conforms(graph, medical_source_schema)

    def test_pathogen_needs_an_antigen(self, medical_source_schema):
        graph = GraphBuilder().node("p", "Pathogen").build()
        assert not conforms(graph, medical_source_schema)

    def test_empty_graph_conforms(self, medical_source_schema):
        assert conforms(GraphBuilder().build(), medical_source_schema)

    def test_report_summary_readable(self, medical_source_schema):
        graph = GraphBuilder().node("v", "Vaccine").build()
        report = check_conformance(graph, medical_source_schema)
        assert "designTarget" in report.summary()

    def test_max_violations_truncates(self, medical_source_schema):
        graph = GraphBuilder().node("v1", "Vaccine").node("v2", "Vaccine").build()
        report = check_conformance(graph, medical_source_schema, max_violations=1)
        assert len(report.violations) == 1
