"""Record/replay traces: determinism, the NDJSON format, and service replay.

The replay contract has three layers, each tested here:

1. **generation determinism** — the same seed and knobs must produce a
   byte-identical trace, including across separate OS processes (hash
   randomisation, dict order and import order must not leak in);
2. **format round-trip** — write → read preserves every field, and a
   reader refuses trace formats newer than it understands;
3. **replay fidelity** — a stamped trace re-runs bit-identically through
   the service (every ``result_fingerprint`` equal, in order), tampering
   is detected, and a duplicate storm is absorbed by the coalescer/cache
   pair with exactly one solver call per unique payload.
"""

import json
import subprocess
import sys
from dataclasses import replace
from io import StringIO
from pathlib import Path

import pytest

from repro.service import ContainmentService, serve_stdio
from repro.workloads.replay import (
    TRACE_FORMAT_VERSION,
    generate_trace,
    latency_percentiles,
    read_trace,
    replay_trace,
    stamp_expected,
    write_trace,
)

ROOT = Path(__file__).resolve().parent.parent

#: Small-but-representative knobs shared by the tests: fast to stamp on one
#: core, yet containing hot/cold tenants, a burst and a duplicate storm.
KNOBS = dict(requests=40, tenants=4, zoo_schemas=2, zoo_queries_per_schema=3)


def run_in_subprocess(code: str) -> str:
    """One fresh interpreter (fresh hash seed, fresh imports) running *code*."""
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


@pytest.fixture(scope="module")
def stamped_trace():
    return stamp_expected(generate_trace(**KNOBS))


# --------------------------------------------------------------------------- #
# generation determinism
# --------------------------------------------------------------------------- #
def test_stream_payloads_identical_across_process_invocations():
    """Satellite: same seed → byte-identical payload sequence, two processes."""
    code = (
        "import hashlib, json\n"
        "from repro.workloads.streams import request_payloads\n"
        "blob = json.dumps(request_payloads(40, seed=7), sort_keys=True)\n"
        "print(hashlib.sha256(blob.encode()).hexdigest())\n"
    )
    assert run_in_subprocess(code) == run_in_subprocess(code)


def test_trace_file_identical_across_process_invocations(tmp_path):
    code_template = (
        "import hashlib, pathlib\n"
        "from repro.workloads.replay import generate_trace, write_trace\n"
        "write_trace(generate_trace(40, tenants=4, zoo_schemas=2,"
        " zoo_queries_per_schema=3), {path!r})\n"
        "print(hashlib.sha256(pathlib.Path({path!r}).read_bytes()).hexdigest())\n"
    )
    first = run_in_subprocess(code_template.format(path=str(tmp_path / "a.ndjson")))
    second = run_in_subprocess(code_template.format(path=str(tmp_path / "b.ndjson")))
    assert first == second


def test_generate_trace_is_deterministic_in_process():
    first, second = generate_trace(**KNOBS), generate_trace(**KNOBS)
    assert first.requests == second.requests
    assert first.meta == second.meta


def test_trace_mixes_hot_and_cold_tenants_with_duplicates():
    trace = generate_trace(**KNOBS)
    tenants = {request.tenant for request in trace.requests}
    assert any(tenant.startswith("hot") for tenant in tenants)
    assert any(tenant.startswith("cold") for tenant in tenants)
    assert trace.unique_payloads() < len(trace)  # storms + hot set repeat
    offsets = [request.offset for request in trace.requests]
    assert offsets == sorted(offsets)  # arrivals never go backwards


# --------------------------------------------------------------------------- #
# format round-trip
# --------------------------------------------------------------------------- #
def test_write_read_round_trip(tmp_path, stamped_trace):
    path = tmp_path / "trace.ndjson"
    write_trace(stamped_trace, path)
    back = read_trace(path)
    assert back.requests == stamped_trace.requests
    assert back.meta["seed"] == stamped_trace.meta["seed"]
    assert back.meta["trace_format"] == TRACE_FORMAT_VERSION


def test_reader_rejects_newer_formats(tmp_path):
    path = tmp_path / "future.ndjson"
    path.write_text(json.dumps({"trace_format": TRACE_FORMAT_VERSION + 1}) + "\n")
    with pytest.raises(ValueError, match="newer than the supported"):
        read_trace(path)


@pytest.mark.parametrize(
    "line, message",
    [
        ("{not json", "not valid JSON"),
        ('["a", "list"]', "must be a JSON object"),
        ('{"tenant": "t0", "offset": 1}', "missing the 'request' object"),
    ],
)
def test_reader_reports_malformed_lines_with_numbers(tmp_path, line, message):
    path = tmp_path / "bad.ndjson"
    path.write_text(line + "\n")
    with pytest.raises(ValueError, match=f"line 1.*{message}|{message}"):
        read_trace(path)


def test_latency_percentiles_nearest_rank():
    assert latency_percentiles([]) == {
        "p50_seconds": 0.0, "p95_seconds": 0.0, "p99_seconds": 0.0,
    }
    assert latency_percentiles([3.0]) == {
        "p50_seconds": 3.0, "p95_seconds": 3.0, "p99_seconds": 3.0,
    }
    hundred = latency_percentiles([float(i) for i in range(1, 101)])
    assert hundred == {"p50_seconds": 50.0, "p95_seconds": 95.0, "p99_seconds": 99.0}


# --------------------------------------------------------------------------- #
# replay fidelity
# --------------------------------------------------------------------------- #
def test_stamped_trace_replays_bit_identically(stamped_trace):
    with ContainmentService(coalesce_window=0.002, max_batch=16) as service:
        report = replay_trace(service, stamped_trace, clients=6)
    assert report.matches
    assert report.fingerprints == [request.expected for request in stamped_trace.requests]
    percentiles = report.percentiles()
    assert set(percentiles) == {"p50_seconds", "p95_seconds", "p99_seconds"}
    assert percentiles["p50_seconds"] <= percentiles["p99_seconds"]


def test_replay_detects_a_tampered_fingerprint(stamped_trace):
    tampered = replace(stamped_trace.requests[3], expected="0" * 64)
    requests = list(stamped_trace.requests)
    requests[3] = tampered
    from repro.workloads.replay import Trace

    with ContainmentService() as service:
        report = replay_trace(service, Trace(requests, dict(stamped_trace.meta)), clients=4)
    assert not report.matches
    assert report.mismatches == [3]


def test_stdio_transport_replays_a_trace_in_order(stamped_trace):
    """The acceptance shape: the trace through ``serve --stdio``, bit-identical."""
    lines = "\n".join(
        json.dumps(request.payload) for request in stamped_trace.requests
    ) + "\n"
    output = StringIO()
    with ContainmentService(coalesce_window=0.002, max_batch=16) as service:
        counts = serve_stdio(service, StringIO(lines), output)
    assert counts["errors"] == 0
    responses = [json.loads(line) for line in output.getvalue().splitlines()]
    assert [response["fingerprint"] for response in responses] == [
        request.expected for request in stamped_trace.requests
    ]


def test_duplicate_storm_coalesces_to_one_solver_call_per_payload():
    """Satellite: under a duplicate storm, the coalescer/result-cache pair
    must absorb every repeat — solver calls (results-cache misses in
    ``/stats``) equal the number of *unique* payloads, and the coalescer's
    dedup counter proves duplicates were folded in flight, not re-solved.
    """
    trace = stamp_expected(
        generate_trace(
            48, tenants=3, hot_tenants=2, hot_corpus_size=4,
            duplicate_storms=3, storm_size=8,
            zoo_schemas=1, zoo_queries_per_schema=2,
        )
    )
    assert trace.unique_payloads() < len(trace) // 2  # genuinely duplicate-heavy
    with ContainmentService(coalesce_window=0.005, max_batch=32) as service:
        report = replay_trace(service, trace, clients=8)
        stats = service.stats_report()
    assert report.matches
    coalescer = stats["coalescer"]
    results_cache = stats["engine"]["caches"]["results"]
    assert coalescer["submitted"] == len(trace)
    assert coalescer["deduplicated"] > 0
    assert results_cache["misses"] == trace.unique_payloads()
