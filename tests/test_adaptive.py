"""The adaptive backend selector behind ``parallel="auto"``.

Unit tests force cost profiles, core counts and GIL state into
:class:`repro.engine.AdaptiveSelector` so every decision is deterministic;
the integration tests then assert the one invariant that makes a wrong
guess harmless — ``"auto"`` verdicts are bit-identical to serial — and that
the probe/observe loop actually records what it measured.
"""

import pytest

from repro.engine import AdaptiveSelector, ContainmentEngine, CostProfile, result_fingerprint
from repro.engine.adaptive import SERIAL_MARGIN, SPAWN_PENALTY_SECONDS
from repro.service import ContainmentService
from repro.workloads.batches import containment_batch


def fingerprints(results):
    return [result_fingerprint(result) for result in results]


# --------------------------------------------------------------------------- #
# the decision rule, with forced inputs
# --------------------------------------------------------------------------- #
def selector(cpus=8, gil=True):
    return AdaptiveSelector(cpu_count=cpus, gil_enabled=gil)


CHEAP_TRANSPORT = CostProfile(solve_seconds=0.1, transport_seconds=1e-6)


def test_degenerate_batches_go_serial():
    chooser = selector()
    assert chooser.choose(1, CHEAP_TRANSPORT) == "serial"  # single item
    assert chooser.choose(0, CHEAP_TRANSPORT) == "serial"
    assert selector(cpus=1).choose(16, CHEAP_TRANSPORT) == "serial"  # one core
    assert chooser.choose(16, None) == "serial"  # no profile yet


def test_process_wins_when_solve_dominates_transport():
    chooser = selector()
    assert chooser.choose(16, CHEAP_TRANSPORT, pool_ready=True) == "process"
    assert chooser.decisions["process"] == 1
    estimates = chooser.last_decision["estimates"]
    assert estimates["process"] * SERIAL_MARGIN <= estimates["serial"]


def test_expensive_transport_keeps_the_batch_serial():
    heavy_wire = CostProfile(solve_seconds=0.001, transport_seconds=0.05)
    assert selector().choose(16, heavy_wire, pool_ready=True) == "serial"


def test_unpicklable_payload_measures_as_inf_and_forces_serial():
    chooser = selector()
    cost = chooser.measure_transport(lambda: None)  # lambdas do not pickle
    assert cost == float("inf")
    profile = CostProfile(solve_seconds=0.1, transport_seconds=cost)
    assert chooser.choose(64, profile, pool_ready=True) == "serial"
    assert chooser.measure_transport(("a", 1, None)) < float("inf")


def test_spawn_penalty_tips_small_batches_to_serial():
    # 4 items x 0.01 s: an 8-way split saves ~35 ms — far less than the
    # 250 ms spawn cost, so a cold pool loses and a warm one wins
    profile = CostProfile(solve_seconds=0.01, transport_seconds=1e-6)
    chooser = selector()
    assert chooser.choose(4, profile, pool_ready=False) == "serial"
    assert chooser.last_decision["estimates"]["process"] > SPAWN_PENALTY_SECONDS
    assert chooser.choose(4, profile, pool_ready=True) == "process"


def test_threads_are_an_option_only_without_the_gil():
    with_gil = selector(gil=True)
    with_gil.choose(16, CHEAP_TRANSPORT, pool_ready=True)
    assert "thread" not in with_gil.last_decision["estimates"]
    free_threaded = selector(gil=False)
    # no pickling cost at all: threads beat even the cheap process transport
    assert free_threaded.choose(16, CHEAP_TRANSPORT, pool_ready=True) == "thread"


def test_close_calls_go_serial_by_margin():
    # a projected ~25% speedup is inside the 1.2x margin on 2 cores
    profile = CostProfile(solve_seconds=0.01, transport_seconds=0.0035)
    chooser = selector(cpus=2)
    assert chooser.choose(8, profile, pool_ready=True) == "serial"
    estimates = chooser.last_decision["estimates"]
    assert estimates["process"] < estimates["serial"]  # cheaper, but not enough


def test_workers_are_capped_by_cpus_and_batch_size():
    chooser = selector(cpus=4)
    chooser.choose(2, CHEAP_TRANSPORT, workers=16, pool_ready=True)
    estimates = chooser.last_decision["estimates"]
    # effective workers = min(16, 4 cpus, 2 items) = 2
    assert estimates["process"] == pytest.approx(
        0.002 + 2 * 1e-6 + 2 * 0.1 / 2, rel=1e-6
    )


# --------------------------------------------------------------------------- #
# measurement: observe / profile_for
# --------------------------------------------------------------------------- #
def test_observe_blends_with_ewma():
    chooser = selector()
    chooser.observe("ctx", 0.1, 0.01)
    assert chooser.profile_for(["ctx"]) == CostProfile(0.1, 0.01)
    chooser.observe("ctx", 0.2, 0.02)  # alpha = 0.5
    profile = chooser.profile_for(["ctx"])
    assert profile.solve_seconds == pytest.approx(0.15)
    assert profile.transport_seconds == pytest.approx(0.015)


def test_serial_observations_refresh_solve_but_keep_transport():
    chooser = selector()
    chooser.observe("ctx", 0.1, 0.01)
    chooser.observe("ctx", 0.3)  # transport_seconds=None: serial timing only
    profile = chooser.profile_for(["ctx"])
    assert profile.solve_seconds == pytest.approx(0.2)
    assert profile.transport_seconds == pytest.approx(0.01)


def test_profile_for_averages_known_contexts_and_ignores_unknown():
    chooser = selector()
    assert chooser.profile_for(["nope"]) is None
    chooser.observe("a", 0.1, 0.01)
    chooser.observe("b", 0.3, 0.03)
    profile = chooser.profile_for(["a", "b", "unknown"])
    assert profile.solve_seconds == pytest.approx(0.2)
    assert profile.transport_seconds == pytest.approx(0.02)


def test_report_is_json_ready_and_counts_decisions():
    import json

    chooser = selector(cpus=2)
    chooser.observe("ctx", 0.1, 0.01)
    chooser.choose(8, chooser.profile_for(["ctx"]), pool_ready=True)
    report = chooser.report()
    assert report["cpu_count"] == 2 and report["profiles"] == 1
    assert sum(report["decisions"].values()) == 1
    assert report["last_decision"]["backend"] in ("serial", "thread", "process")
    json.dumps(report)  # must serialise for /stats


# --------------------------------------------------------------------------- #
# the engine's auto backend
# --------------------------------------------------------------------------- #
def test_auto_matches_serial_fingerprints_and_records_a_probe():
    schema, pairs = containment_batch("medical")
    serial = ContainmentEngine().check_many(pairs, schema=schema)
    engine = ContainmentEngine()
    auto = engine.check_many(pairs, schema=schema, parallel="auto")
    assert fingerprints(auto) == fingerprints(serial)
    report = engine.adaptive_report()
    assert report["probes"] >= 1  # cold schema: the first item calibrated
    assert report["profiles"] >= 1
    assert sum(report["decisions"].values()) >= 1


def test_auto_routes_to_the_process_pool_when_the_profile_says_so():
    """Forcing a many-core selector with a solve-dominated profile must send
    the batch through the worker pool — and keep verdicts bit-identical."""
    schema, pairs = containment_batch("medical", length=4)
    serial = ContainmentEngine().check_many(pairs, schema=schema)
    engine = ContainmentEngine(max_workers=2)
    try:
        engine._selector = AdaptiveSelector(cpu_count=8, gil_enabled=True)
        engine.selector.observe(
            schema.canonical_fingerprint(), solve_seconds=0.5, transport_seconds=1e-6
        )
        auto = engine.check_many(pairs, schema=schema, parallel="auto")
        assert fingerprints(auto) == fingerprints(serial)
        assert engine.selector.decisions["process"] >= 1
        assert engine.transport_report() is not None  # the pool really ran
    finally:
        engine.shutdown()


def test_auto_refreshes_the_profile_from_serial_runs():
    schema, pairs = containment_batch("medical")
    engine = ContainmentEngine()
    engine.check_many(pairs, schema=schema, parallel="auto")
    profile = engine.selector.profile_for([schema.canonical_fingerprint()])
    assert profile is not None and profile.solve_seconds > 0.0
    assert profile.transport_seconds > 0.0  # the probe's pickle timing


def test_empty_auto_batch_returns_empty():
    assert ContainmentEngine().check_many([], parallel="auto") == []


def test_service_defaults_to_auto_and_reports_the_selector():
    with ContainmentService(coalesce_window=0.0) as service:
        assert service.backend == "auto"
        response = service.handle(
            {"workload": "medical", "left": "p(x) := Antigen(x)", "right": "q(x) := Antigen(x)"}
        )
        assert response["contained"] is True
        report = service.stats_report()
        assert "adaptive" in report
        assert report["adaptive"]["probes"] >= 1  # the first request calibrated
