"""Tests for graph serialisation and the random generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, GraphBuilder, graph_from_dict, graph_to_dict, load_json, dump_json, to_dot
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    random_tree,
    star_graph,
)


@pytest.fixture
def graph():
    return (
        GraphBuilder()
        .node("v1", "Vaccine")
        .node("a1", "Antigen")
        .edge("v1", "designTarget", "a1")
        .build()
    )


class TestJsonRoundTrip:
    def test_dict_round_trip(self, graph):
        assert graph_from_dict(graph_to_dict(graph)) == graph

    def test_file_round_trip(self, graph, tmp_path):
        path = tmp_path / "graph.json"
        dump_json(graph, path)
        assert load_json(path) == graph

    def test_dict_is_sorted_and_stable(self, graph):
        assert graph_to_dict(graph) == graph_to_dict(graph.copy())

    def test_malformed_document_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"nodes": []})

    def test_integer_identifiers_preserved(self):
        graph = Graph()
        graph.add_edge(1, "r", 2)
        assert graph_from_dict(graph_to_dict(graph)) == graph


class TestDot:
    def test_dot_contains_labels_and_edges(self, graph):
        dot = to_dot(graph)
        assert "digraph" in dot
        assert "designTarget" in dot
        assert "Vaccine" in dot


class TestGenerators:
    def test_path_graph_shape(self):
        graph = path_graph(4, "A", "r")
        assert graph.node_count() == 5 and graph.edge_count() == 4

    def test_cycle_graph_shape(self):
        graph = cycle_graph(4, "A", "r")
        assert graph.node_count() == 4 and graph.edge_count() == 4

    def test_star_graph_shape(self):
        graph = star_graph(6, "Hub", "Leaf", "r")
        assert graph.node_count() == 7 and graph.edge_count() == 6

    def test_random_tree_is_a_tree(self):
        graph = random_tree(15, ["A", "B"], ["r", "s"], seed=3)
        assert graph.edge_count() == graph.node_count() - 1
        assert graph.is_connected()

    def test_random_graph_deterministic_with_seed(self):
        left = random_graph(8, ["A"], ["r"], edge_probability=0.3, seed=7)
        right = random_graph(8, ["A"], ["r"], edge_probability=0.3, seed=7)
        assert left == right

    def test_random_graph_every_node_labeled(self):
        graph = random_graph(5, ["A", "B"], ["r"], seed=1)
        assert all(graph.labels(node) for node in graph.nodes())

    def test_grid_graph_shape(self):
        graph = grid_graph(3, 4, "Cell", "right", "down")
        assert graph.node_count() == 12
        assert graph.edge_count() == 3 * 3 + 2 * 4
