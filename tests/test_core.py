"""Tests for the compiled automaton core (repro.core)."""

import pickle

import pytest

from repro.chase import SatisfiabilityConfig, SatisfiabilitySolver
from repro.core import (
    DFA,
    PrefixPruner,
    SymbolTable,
    clear_compile_memo,
    compile_regex,
    determinize,
    has_productive_cycle,
    symbol_table,
)
from repro.dl import NoExistsCI, TBox, conj
from repro.graph import forward
from repro.rpq import build_nfa, parse_c2rpq, parse_regex
from repro.rpq.regex import EdgeStep, NodeTest


def w(text):
    """Build a word (tuple of symbols) from a whitespace-separated string."""
    from repro.graph.labels import SignedLabel

    result = []
    for token in text.split():
        if token[:1].isupper():
            result.append(NodeTest(token))
        else:
            result.append(EdgeStep(SignedLabel.parse(token)))
    return tuple(result)


def dfa_of(text):
    return determinize(build_nfa(parse_regex(text)), SymbolTable())


# --------------------------------------------------------------------------- #
# symbol interning
# --------------------------------------------------------------------------- #
class TestSymbolTable:
    def test_intern_is_idempotent(self):
        table = SymbolTable()
        symbol = w("r")[0]
        first = table.intern(symbol)
        assert table.intern(symbol) == first
        assert len(table) == 1

    def test_roundtrip_word(self):
        table = SymbolTable()
        word = w("a b A c-")
        ids = table.intern_word(word)
        assert table.word(ids) == word
        assert all(table.symbol(i) == s for i, s in zip(ids, word))

    def test_known_does_not_intern(self):
        table = SymbolTable()
        assert table.known(w("a")[0]) is None
        assert len(table) == 0

    def test_sort_key_is_canonical_not_arrival_order(self):
        table = SymbolTable()
        b, a = table.intern(w("b")[0]), table.intern(w("a")[0])
        # arrival order says b < a, canonical key order says a < b
        assert sorted([b, a], key=table.sort_key) == [a, b]

    def test_registry_shares_per_context(self):
        one = symbol_table("ctx-test-shared")
        two = symbol_table("ctx-test-shared")
        assert one is two
        assert one is not symbol_table("ctx-test-other")

    def test_default_table_is_stable(self):
        assert symbol_table() is symbol_table(None)


# --------------------------------------------------------------------------- #
# determinization and DFA queries
# --------------------------------------------------------------------------- #
class TestDeterminize:
    @pytest.mark.parametrize(
        "spec",
        ["a . b* . c", "(a + b)* . c", "(a . b)+ + a . b . a . b", "A . (a . b-)*", "a*"],
    )
    def test_dfa_accepts_exactly_the_nfa_language(self, spec):
        nfa = build_nfa(parse_regex(spec))
        dfa = determinize(nfa, SymbolTable())
        for word in nfa.enumerate_words(max_length=6, max_state_repeats=3):
            assert dfa.accepts(word)
        for word in dfa.enumerate_words(max_length=6):
            assert nfa.accepts(word)

    def test_construction_is_deterministic(self):
        first = dfa_of("(a + b)* . c")
        second = dfa_of("(a + b)* . c")
        assert first.num_states == second.num_states
        assert first.final == second.final
        assert sorted(
            (s, first.table.sort_key(i), t) for s, i, t in first.transitions()
        ) == sorted((s, second.table.sort_key(i), t) for s, i, t in second.transitions())

    def test_rejects_unknown_letters(self):
        dfa = dfa_of("a . b")
        assert not dfa.accepts(w("a z"))

    def test_nondeterministic_transitions_rejected(self):
        table = SymbolTable()
        symbol = table.intern(w("a")[0])
        with pytest.raises(ValueError):
            DFA(table, 2, 0, [1], [(0, symbol, 0), (0, symbol, 1)])


class TestLanguageQueries:
    def test_emptiness(self):
        assert dfa_of("<empty> . a").is_empty()
        assert not dfa_of("a?").is_empty()

    def test_shortest_witness_and_epsilon(self):
        assert dfa_of("a*").shortest_witness() == ()
        assert dfa_of("a . b* . c").shortest_witness() == w("a c")
        assert dfa_of("<empty>").shortest_witness() is None

    def test_shortest_witness_tie_break_is_canonical(self):
        # both b and a reach acceptance in one step; the canonical order wins
        assert dfa_of("b + a").shortest_witness() == w("a")

    def test_enumeration_is_duplicate_free_and_length_ordered(self):
        dfa = dfa_of("(a + b)* . c")
        words = list(dfa.enumerate_words(max_length=4))
        assert len(words) == len(set(words))
        lengths = [len(word) for word in words]
        assert lengths == sorted(lengths)
        assert all(dfa.accepts(word) for word in words)

    def test_enumeration_respects_caps(self):
        words = list(dfa_of("(a + b)*").enumerate_words(max_length=10, max_words=7))
        assert len(words) == 7

    def test_enumeration_with_zero_word_budget_yields_nothing(self):
        assert list(dfa_of("a*").enumerate_words(max_length=5, max_words=0)) == []
        assert list(dfa_of("a*").enumerate_words(max_length=5, max_words=1)) == [()]


class TestBooleanOperations:
    def test_complement_flips_membership(self):
        dfa = dfa_of("a . b")
        complement = dfa.complement()
        for word in [(), w("a"), w("a b"), w("a b a"), w("b")]:
            assert complement.accepts(word) != dfa.accepts(word)

    def test_product_intersection(self):
        table = SymbolTable()
        starred = determinize(build_nfa(parse_regex("(a + b)*")), table)
        ends_b = determinize(build_nfa(parse_regex("(a + b)* . b")), table)
        both = starred.product(ends_b, "intersection")
        assert both.accepts(w("a b"))
        assert not both.accepts(w("b a"))

    def test_product_union(self):
        table = SymbolTable()
        just_a = determinize(build_nfa(parse_regex("a")), table)
        just_b = determinize(build_nfa(parse_regex("b")), table)
        either = just_a.product(just_b, "union")
        assert either.accepts(w("a")) and either.accepts(w("b"))
        assert not either.accepts(w("a b"))

    def test_product_requires_shared_table(self):
        with pytest.raises(ValueError):
            dfa_of("a").product(dfa_of("a"))

    def test_equivalence(self):
        table = SymbolTable()
        one = determinize(build_nfa(parse_regex("(a . b)+ + a . b . a . b")), table)
        two = determinize(build_nfa(parse_regex("(a . b)+")), table)
        three = determinize(build_nfa(parse_regex("(a . b)*")), table)
        assert one.equivalent(two)
        assert not one.equivalent(three)


class TestMinimize:
    def test_minimize_preserves_language(self):
        dfa = dfa_of("(a . b)+ + a . b . a . b")
        minimal = dfa.minimize()
        assert minimal.equivalent(dfa)
        assert minimal.num_states <= dfa.num_states

    def test_minimize_is_idempotent(self):
        minimal = dfa_of("(a + b)* . c").minimize()
        again = minimal.minimize()
        assert again.num_states == minimal.num_states
        assert again.final == minimal.final
        assert sorted(again.transitions()) == sorted(minimal.transitions())

    def test_known_minimal_size(self):
        # words over {a,b} ending in b: the canonical 2-state DFA
        assert dfa_of("(a + b)* . b").minimize().num_states == 2

    def test_minimize_drops_dead_branches(self):
        # the 0-branch contributes states that can never accept
        assert dfa_of("a + <empty> . b . c").minimize().num_states == 2


# --------------------------------------------------------------------------- #
# the compile memo
# --------------------------------------------------------------------------- #
class TestCompileRegex:
    def test_structurally_equal_regexes_share_one_compilation(self):
        clear_compile_memo()
        first = compile_regex(parse_regex("a . (b + c)*"))
        second = compile_regex(parse_regex("a . (b + c)*"))
        assert first is second

    def test_contexts_are_separate(self):
        clear_compile_memo()
        regex = parse_regex("a . b")
        assert compile_regex(regex, "ctx-one") is not compile_regex(regex, "ctx-two")

    def test_clear_resets_the_memo(self):
        clear_compile_memo()
        regex = parse_regex("a+")
        first = compile_regex(regex)
        assert clear_compile_memo() >= 1
        assert compile_regex(regex) is not first

    def test_words_tuple_is_memoized_and_matches_nfa(self):
        automaton = compile_regex(parse_regex("(a + b)* . c"))
        words = automaton.words(6, 2, 100)
        assert words is automaton.words(6, 2, 100)  # same tuple object
        assert words == tuple(
            automaton.nfa.enumerate_words(max_length=6, max_state_repeats=2, max_words=100)
        )

    def test_flags(self):
        assert compile_regex(parse_regex("a*")).has_productive_cycle()
        assert not compile_regex(parse_regex("a . b")).has_productive_cycle()
        assert compile_regex(parse_regex("<empty> . a")).is_empty()
        assert not compile_regex(parse_regex("a")).is_empty()

    def test_shortest_witness_via_dfa(self):
        assert compile_regex(parse_regex("a . b* . c")).shortest_witness() == w("a c")

    def test_pickle_rebuilds_through_the_memo(self):
        clear_compile_memo()
        automaton = compile_regex(parse_regex("(a + b)* . c"), "ctx-pickle")
        clone = pickle.loads(pickle.dumps(automaton))
        assert clone is automaton  # same process: the memo deduplicates
        assert clone.context == "ctx-pickle"

    def test_has_productive_cycle_function(self):
        assert has_productive_cycle(build_nfa(parse_regex("a . b+ . c")))
        assert not has_productive_cycle(build_nfa(parse_regex("a . b . c")))


# --------------------------------------------------------------------------- #
# prefix sharing
# --------------------------------------------------------------------------- #
def _solve(query_text, tbox, share):
    config = SatisfiabilityConfig(max_words_per_atom=20, share_prefixes=share)
    solver = SatisfiabilitySolver(tbox, config)
    return solver.is_satisfiable(parse_c2rpq(query_text).boolean())


class TestPrefixSharing:
    QUERY = "q() := A(x), (r . (s + t)*)(x, y), ((s + t)*)(y, z)"
    TBOX = TBox([NoExistsCI(conj("A"), forward("r"), conj())])

    def test_verdict_regime_and_counter_are_preserved(self):
        shared = _solve(self.QUERY, self.TBOX, share=True)
        independent = _solve(self.QUERY, self.TBOX, share=False)
        assert shared.satisfiable == independent.satisfiable is False
        assert shared.regime == independent.regime
        assert shared.patterns_checked == independent.patterns_checked

    def test_satisfiable_query_unaffected(self):
        tbox = TBox()
        shared = _solve(self.QUERY, tbox, share=True)
        independent = _solve(self.QUERY, tbox, share=False)
        assert shared.satisfiable and independent.satisfiable
        assert shared.patterns_checked == independent.patterns_checked

    def test_pruner_counts_prefix_chases_and_prunes(self):
        chased = []
        word_lists = [["w1", "w2"], ["v1", "v2", "v3"]]

        def build(atoms, words):
            return tuple(words), None

        def check(prefix):
            chased.append(prefix)
            return prefix != ("w2",)  # every pattern under w2 is inconsistent

        pruner = PrefixPruner(["atom1", "atom2"], word_lists, build, check)
        assert pruner.useful
        import itertools

        pruned = [
            combo
            for combo in itertools.product(*word_lists)
            if pruner.prunes(list(combo))
        ]
        assert pruned == [("w2", "v1"), ("w2", "v2"), ("w2", "v3")]
        assert pruner.prefix_chases == 2  # each distinct prefix chased once
        assert pruner.pruned == 3

    def test_pruner_useless_for_single_combination_suffixes(self):
        pruner = PrefixPruner(["a", "b"], [["w1", "w2"], ["v1"]], None, None)
        assert not pruner.useful
