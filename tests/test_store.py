"""The disk-persistent result store: round trips, warm starts, and every
failure mode degrading to in-memory behaviour with identical verdicts."""

import sqlite3
import threading

import pytest

from repro.engine import ContainmentEngine, result_fingerprint
from repro.store import STORE_FORMAT_VERSION, ResultStore
from repro.workloads.batches import medical_batch, mixed_batch


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "store.db"


def _fingerprints(results):
    return [result_fingerprint(result) for result in results]


@pytest.fixture(scope="module")
def medical_baseline():
    schema, pairs = medical_batch()
    results = ContainmentEngine().check_many(pairs, schema=schema)
    return schema, pairs, _fingerprints(results)


# --------------------------------------------------------------------------- #
# the happy path: write-back, warm start, bit-identical verdicts
# --------------------------------------------------------------------------- #
def test_round_trip_serves_identical_verdicts_from_disk(store_path, medical_baseline):
    schema, pairs, baseline = medical_baseline

    writer = ContainmentEngine(persist=store_path)
    cold = writer.check_many(pairs, schema=schema)
    assert _fingerprints(cold) == baseline
    assert writer.stats.store.writes >= len(pairs)
    writer.close()

    reader = ContainmentEngine(persist=store_path)
    warm = reader.check_many(pairs, schema=schema)
    assert _fingerprints(warm) == baseline
    stats = reader.stats
    assert stats.store.hits == len(pairs)
    assert stats.store.errors == 0
    # every verdict came from disk: the fresh engine's result cache missed
    assert stats.results.hits == 0
    reader.close()


def test_store_tiers_and_stamp(store_path, medical_baseline):
    schema, pairs, _ = medical_baseline
    engine = ContainmentEngine(persist=store_path)
    engine.check_many(pairs, schema=schema)
    engine.close()

    store = ResultStore(store_path, mode="ro")
    counts = store.counts()
    assert counts["results"] == len(pairs)
    assert counts["schema-tboxes"] >= 1
    assert store.meta()["store_format_version"] == str(STORE_FORMAT_VERSION)
    assert store.file_size() > 0
    entries = store.entries()
    assert len(entries) == sum(counts.values())
    assert all(entry["payload_bytes"] > 0 for entry in entries)
    store.close()


def test_mixed_batch_multi_schema_round_trip(store_path):
    requests = mixed_batch(length=3)
    baseline = _fingerprints(ContainmentEngine().check_many(requests))

    writer = ContainmentEngine(persist=store_path)
    writer.check_many(requests)
    writer.close()

    reader = ContainmentEngine(persist=store_path)
    assert _fingerprints(reader.check_many(requests)) == baseline
    assert reader.stats.store.hits == len(requests)
    reader.close()


def test_read_only_mode_never_writes(store_path, medical_baseline):
    schema, pairs, baseline = medical_baseline
    writer = ContainmentEngine(persist=store_path)
    writer.check_many(pairs[:5], schema=schema)
    writer.close()

    reader = ContainmentEngine(persist=store_path, persist_mode="ro")
    results = reader.check_many(pairs, schema=schema)  # 5 on disk, 10 solved
    assert _fingerprints(results) == baseline
    stats = reader.stats.store
    # 5 result replays + 1 schema-TBox hit while solving the missing 10
    assert stats.hits == 6
    assert stats.writes == 0
    reader.close()

    store = ResultStore(store_path, mode="ro")
    assert store.counts()["results"] == 5  # the solved 10 were not written back
    assert store.put("results", "k", object()) is False
    store.close()


# --------------------------------------------------------------------------- #
# failure modes: always in-memory behaviour, always identical verdicts
# --------------------------------------------------------------------------- #
def test_corrupted_database_file_degrades_gracefully(store_path, medical_baseline):
    schema, pairs, baseline = medical_baseline
    store_path.write_bytes(b"definitely not a sqlite database" * 64)

    engine = ContainmentEngine(persist=store_path)
    assert engine.store.disabled
    assert engine.store.disabled_reason
    results = engine.check_many(pairs, schema=schema)
    assert _fingerprints(results) == baseline
    assert engine.stats.store.hits == 0
    engine.close()


def test_version_stamp_mismatch_wipes_on_writable_open(store_path, medical_baseline):
    schema, pairs, baseline = medical_baseline
    engine = ContainmentEngine(persist=store_path)
    engine.check_many(pairs, schema=schema)
    engine.close()

    with sqlite3.connect(store_path) as connection:
        connection.execute("UPDATE meta SET value = '0.0.0' WHERE key = 'library_version'")

    reopened = ContainmentEngine(persist=store_path)
    assert not reopened.store.disabled
    assert reopened.store.counts() == {}  # stale entries were wiped, not served
    results = reopened.check_many(pairs, schema=schema)
    assert _fingerprints(results) == baseline
    assert reopened.stats.store.hits == 0
    reopened.close()

    store = ResultStore(store_path, mode="ro")
    assert store.meta()["library_version"] != "0.0.0"  # restamped
    store.close()


def test_version_stamp_mismatch_disables_read_only_open(store_path, medical_baseline):
    schema, pairs, _ = medical_baseline
    engine = ContainmentEngine(persist=store_path)
    engine.check_many(pairs, schema=schema)
    engine.close()
    with sqlite3.connect(store_path) as connection:
        connection.execute(
            "UPDATE meta SET value = '999' WHERE key = 'store_format_version'"
        )

    store = ResultStore(store_path, mode="ro")
    assert store.disabled
    assert "version stamp mismatch" in store.disabled_reason
    assert store.get("results", "anything") is None
    store.close()


def test_unwritable_store_location_degrades_gracefully(tmp_path, medical_baseline):
    schema, pairs, baseline = medical_baseline
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("a store path whose parent is a file cannot be created")

    engine = ContainmentEngine(persist=blocker / "store.db")
    assert engine.store.disabled
    results = engine.check_many(pairs, schema=schema)
    assert _fingerprints(results) == baseline
    assert engine.stats.store.writes == 0
    engine.close()


def test_read_only_open_of_missing_file_degrades_gracefully(store_path, medical_baseline):
    schema, pairs, baseline = medical_baseline
    engine = ContainmentEngine(persist=store_path, persist_mode="ro")
    assert engine.store.disabled
    assert engine.store.stats.errors == 0  # a cold start is not an error
    assert _fingerprints(engine.check_many(pairs, schema=schema)) == baseline
    engine.close()


def test_read_only_open_of_missing_file_is_a_clean_no_store_state(store_path):
    """Regression: a worker warm-starting before the parent's first write-back
    used to record ``OperationalError: unable to open database file`` and
    count an error; it must get a clean "no store yet" disabled state."""
    store = ResultStore(store_path, mode="ro")
    assert store.disabled
    assert "no store file yet" in store.disabled_reason
    assert "OperationalError" not in store.disabled_reason
    assert store.stats.errors == 0
    assert store.get("results", "anything") is None  # counts a miss, not an error
    assert store.put("results", "key", 1) is False
    assert store.stats.errors == 0
    store.close()


def test_pool_warm_start_before_first_write_back_is_noise_free(store_path):
    """A pool pointed at a store file nobody has created yet must report
    clean merged stats — no error noise from the workers' read-only opens."""
    from repro.engine import WorkerPool

    schema, pairs = medical_batch()
    with WorkerPool(1, persist=store_path) as pool:
        results = pool.check_many([(left, right, schema, None) for left, right in pairs[:2]])
        stats = pool.stats()
    assert len(results) == 2
    assert stats.store is not None
    assert stats.store.errors == 0
    assert stats.store.hits == 0


def test_concurrent_writers_degrade_gracefully(store_path, medical_baseline):
    """Two engines sharing one file may lose write-backs, never answers."""
    schema, pairs, baseline = medical_baseline
    engines = [ContainmentEngine(persist=store_path) for _ in range(2)]
    outcomes = [None, None]

    def run(index):
        outcomes[index] = _fingerprints(engines[index].check_many(pairs, schema=schema))

    threads = [threading.Thread(target=run, args=(index,)) for index in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert outcomes[0] == baseline
    assert outcomes[1] == baseline
    for engine in engines:
        engine.close()

    # whatever interleaving happened, the surviving file replays correctly
    reader = ContainmentEngine(persist=store_path)
    assert _fingerprints(reader.check_many(pairs, schema=schema)) == baseline
    reader.close()


def test_unpicklable_values_stay_memory_only(store_path):
    store = ResultStore(store_path)
    assert store.put("schema-tboxes", "key", lambda: None) is False  # unpicklable
    assert store.stats.errors == 1
    assert store.put("schema-tboxes", "key", {"fine": 1}) is True
    assert store.get("schema-tboxes", "key") == {"fine": 1}
    with pytest.raises(ValueError, match="unknown store tier"):
        store.put("automata", "key", 1)
    store.close()


def test_put_many_writes_once_and_skips_existing_keys(store_path):
    store = ResultStore(store_path)
    assert store.put_many("schema-tboxes", [("a", 1), ("b", 2)]) == 2
    # content-addressed: an existing key is never re-pickled or rewritten
    assert store.put_many("schema-tboxes", [("a", 9), ("c", 3)]) == 1
    assert store.get("schema-tboxes", "a") == 1
    assert store.counts()["schema-tboxes"] == 3
    assert store.stats.writes == 3
    assert store.put_many("schema-tboxes", []) == 0
    store.close()
    assert store.put_many("schema-tboxes", [("d", 4)]) == 0  # disabled: no-op


def test_closed_store_behaves_like_a_disabled_one(store_path):
    store = ResultStore(store_path)
    store.put("results", "key", {"value": 1})
    store.close()
    assert store.disabled
    assert store.get("results", "key") is None
    assert store.put("results", "key2", {"value": 2}) is False
    assert store.counts() == {}


def test_analysis_batches_accept_persist(store_path):
    """type_check_many/check_equivalence_many run on a one-shot persisting
    engine when given ``persist=`` and no engine."""
    from repro.analysis import check_equivalence_many
    from repro.workloads import medical

    schema = medical.source_schema()
    jobs = [(medical.migration(), medical.migration(), schema)]
    first = check_equivalence_many(jobs, persist=store_path)
    assert first[0].equivalent
    store = ResultStore(store_path, mode="ro")
    assert store.counts().get("results", 0) > 0  # verdicts survived the call
    store.close()
    second = check_equivalence_many(jobs, persist=store_path)
    assert [r.equivalent for r in second] == [r.equivalent for r in first]


# --------------------------------------------------------------------------- #
# the process backend: workers warm-start read-only
# --------------------------------------------------------------------------- #
def test_workers_warm_start_from_disk(store_path, medical_baseline):
    schema, pairs, baseline = medical_baseline
    warmer = ContainmentEngine(persist=store_path)
    warmer.check_many(pairs, schema=schema)
    warmer.close()

    engine = ContainmentEngine(persist=store_path, max_workers=2)
    try:
        results = engine.check_many(pairs, schema=schema, parallel="process")
        assert _fingerprints(results) == baseline
        pool_stats = engine.process_stats()
        assert pool_stats.store is not None
        assert pool_stats.store.hits == len(pairs)
        assert pool_stats.store.writes == 0  # read-only: workers never write
    finally:
        engine.close()


def test_process_backend_merges_worker_verdicts_into_the_store(store_path):
    schema, pairs = medical_batch()
    engine = ContainmentEngine(persist=store_path, max_workers=2)
    try:
        cold = engine.check_many(pairs, schema=schema, parallel="process")
        assert engine.stats.store.writes >= len(pairs)
    finally:
        engine.close()

    reader = ContainmentEngine(persist=store_path)
    warm = reader.check_many(pairs, schema=schema)
    assert _fingerprints(warm) == _fingerprints(cold)
    assert reader.stats.store.hits == len(pairs)
    reader.close()
