"""Tests for booleanization (Lemma D.1) and the schema encoding (Thm 5.6)."""

import pytest

from repro.containment import booleanize, encode_query, filter_query, interleave_regex
from repro.exceptions import QueryError
from repro.rpq import UC2RPQ, parse_c2rpq, parse_regex, parse_uc2rpq
from repro.rpq.regex import EMPTY, EmptyLanguage
from repro.schema import Multiplicity


class TestBooleanize:
    def test_arity_mismatch_rejected(self, medical_source_schema):
        left = parse_uc2rpq(["p(x) := Vaccine(x)"])
        right = parse_uc2rpq(["q(x, y) := (designTarget)(x, y)"])
        with pytest.raises(QueryError):
            booleanize(medical_source_schema, left, right)

    def test_boolean_output(self, medical_source_schema):
        left = parse_uc2rpq(["p(x) := Vaccine(x)"])
        right = parse_uc2rpq(["q(x) := (designTarget)(x, y)"])
        reduction = booleanize(medical_source_schema, left, right)
        assert reduction.left.is_boolean() and reduction.right.is_boolean()

    def test_marker_atoms_added_once_per_free_variable(self, medical_source_schema):
        left = parse_uc2rpq(["p(x, y) := (designTarget)(x, y)"])
        right = parse_uc2rpq(["q(x, y) := (designTarget . crossReacting*)(x, y)"])
        reduction = booleanize(medical_source_schema, left, right)
        assert len(reduction.marker_node_labels) == 2
        for disjunct in list(reduction.left) + list(reduction.right):
            marker_atoms = [
                atom for atom in disjunct.atoms
                if atom.regex.node_labels() & set(reduction.marker_node_labels)
            ]
            assert len(marker_atoms) == 2

    def test_extended_schema_keeps_original_constraints(self, medical_source_schema):
        left = parse_uc2rpq(["p(x) := Vaccine(x)"])
        right = parse_uc2rpq(["q(x) := Antigen(x)"])
        reduction = booleanize(medical_source_schema, left, right)
        extended = reduction.schema
        assert extended.multiplicity("Vaccine", "designTarget", "Antigen") is Multiplicity.ONE
        assert set(reduction.marker_node_labels) <= extended.node_labels
        assert set(reduction.marker_edge_labels) <= extended.edge_labels

    def test_acyclicity_preserved_on_right(self, medical_source_schema):
        right = parse_uc2rpq(["q(x) := (designTarget . crossReacting*)(x, y), Antigen(y)"])
        left = parse_uc2rpq(["p(x) := Vaccine(x)"])
        reduction = booleanize(medical_source_schema, left, right)
        assert reduction.right.is_acyclic()

    def test_right_free_variables_aligned_with_left(self, medical_source_schema):
        left = parse_uc2rpq(["p(u) := Vaccine(u)"])
        right = parse_uc2rpq(["q(w) := Antigen(w)"])
        reduction = booleanize(medical_source_schema, left, right)
        # both sides must mention the same marker labels (same answer tuple)
        assert reduction.left.node_labels() & set(reduction.marker_node_labels)
        assert reduction.right.node_labels() & set(reduction.marker_node_labels)

    def test_empty_right_union_allowed(self, medical_source_schema):
        left = parse_uc2rpq(["p(x) := Vaccine(x)"])
        reduction = booleanize(medical_source_schema, left, UC2RPQ([], name="false"))
        assert reduction.right.is_empty()

    def test_boolean_inputs_pass_through(self, medical_source_schema):
        left = parse_uc2rpq(["p() := Vaccine(x)"])
        right = parse_uc2rpq(["q() := Antigen(x)"])
        reduction = booleanize(medical_source_schema, left, right)
        assert not reduction.marker_node_labels
        assert reduction.schema.node_labels == medical_source_schema.node_labels


class TestSchemaEncoding:
    def test_interleave_surrounds_edges(self, medical_source_schema):
        rewritten = interleave_regex(parse_regex("designTarget"), medical_source_schema)
        text = str(rewritten)
        assert "Vaccine" in text and "Antigen" in text and "Pathogen" in text

    def test_interleave_replaces_foreign_labels(self, medical_source_schema):
        assert interleave_regex(parse_regex("alienEdge"), medical_source_schema).is_empty_language()
        rewritten = interleave_regex(parse_regex("AlienLabel"), medical_source_schema)
        assert isinstance(rewritten, EmptyLanguage)

    def test_interleave_keeps_schema_labels(self, medical_source_schema):
        rewritten = interleave_regex(parse_regex("Vaccine"), medical_source_schema)
        assert rewritten == parse_regex("Vaccine")

    def test_filter_keeps_structure_without_guards(self, medical_source_schema):
        query = parse_c2rpq("q(x) := (designTarget . crossReacting*)(x, y)")
        filtered = filter_query(query, medical_source_schema)
        assert filtered.atoms[0].regex == query.atoms[0].regex

    def test_filter_drops_foreign_edge_labels(self, medical_source_schema):
        query = parse_c2rpq("q(x) := (designTarget . alien)(x, y)")
        filtered = filter_query(query, medical_source_schema)
        assert filtered.atoms[0].regex.is_empty_language()

    def test_encode_query_applies_to_every_atom(self, medical_source_schema):
        query = parse_c2rpq("q(x) := (designTarget)(x, y), (exhibits-)(y, z)")
        encoded = encode_query(query, medical_source_schema)
        assert len(encoded.atoms) == 2
        assert all("Pathogen" in str(atom.regex) for atom in encoded.atoms)

    def test_empty_schema_gives_empty_language(self):
        from repro.schema import Schema

        schema = Schema([], [])
        assert interleave_regex(parse_regex("r"), schema) is EMPTY
