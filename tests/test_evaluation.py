"""Tests for query evaluation over finite graphs (Appendix A semantics)."""

import pytest

from repro.graph import GraphBuilder
from repro.graph.generators import cycle_graph, path_graph
from repro.rpq import (
    eval_c2rpq,
    eval_regex,
    eval_uc2rpq,
    parse_c2rpq,
    parse_regex,
    parse_uc2rpq,
    satisfies,
    witnessing_path,
)
from repro.workloads import medical


@pytest.fixture(scope="module")
def knowledge_graph():
    return medical.sample_graph()


class TestRegexEvaluation:
    def test_single_edge(self, knowledge_graph):
        answers = eval_regex(parse_regex("designTarget"), knowledge_graph)
        assert ("measles-vaccine", "H-protein") in answers
        assert ("mumps-vaccine", "HN-protein") in answers

    def test_example_32(self, knowledge_graph):
        # vaccines together with the antigens they target directly or by cross-reaction
        answers = eval_regex(
            parse_regex("Vaccine . designTarget . crossReacting* . Antigen"), knowledge_graph
        )
        assert ("measles-vaccine", "H-protein") in answers
        assert ("measles-vaccine", "F-protein") in answers
        assert ("mumps-vaccine", "HN-protein") in answers
        assert ("mumps-vaccine", "F-protein") not in answers

    def test_inverse_edge(self, knowledge_graph):
        answers = eval_regex(parse_regex("designTarget-"), knowledge_graph)
        assert ("H-protein", "measles-vaccine") in answers

    def test_node_test_restricts(self, knowledge_graph):
        with_test = eval_regex(parse_regex("Pathogen . exhibits"), knowledge_graph)
        without = eval_regex(parse_regex("exhibits"), knowledge_graph)
        assert with_test == without  # only pathogens have exhibits edges anyway
        assert all(knowledge_graph.has_label(source, "Pathogen") for source, _ in with_test)

    def test_epsilon_is_identity(self, knowledge_graph):
        answers = eval_regex(parse_regex("<eps>"), knowledge_graph)
        assert answers == {(node, node) for node in knowledge_graph.nodes()}

    def test_empty_language(self, knowledge_graph):
        assert eval_regex(parse_regex("<empty>"), knowledge_graph) == set()

    def test_union_and_star_on_cycle(self):
        cycle = cycle_graph(3, "A", "r")
        answers = eval_regex(parse_regex("r . r"), cycle)
        assert (0, 2) in answers
        star_answers = eval_regex(parse_regex("r*"), cycle)
        assert (0, 0) in star_answers and (0, 1) in star_answers

    def test_two_way_navigation(self):
        graph = GraphBuilder().edge("a", "r", "b").edge("c", "r", "b").build()
        # sibling query: from a, go down r and back up r⁻
        answers = eval_regex(parse_regex("r . r-"), graph)
        assert ("a", "c") in answers and ("a", "a") in answers


class TestC2RPQEvaluation:
    def test_boolean_satisfaction(self, knowledge_graph):
        assert satisfies(knowledge_graph, parse_c2rpq("q() := (crossReacting)(x, y)"))
        assert not satisfies(knowledge_graph, parse_c2rpq("q() := (crossReacting)(x, x)"))

    def test_join_over_shared_variable(self, knowledge_graph):
        query = parse_c2rpq("q(v, p) := (designTarget)(v, a), (exhibits-)(a, p)")
        answers = eval_c2rpq(query, knowledge_graph)
        assert ("measles-vaccine", "measles-virus") in answers
        assert ("mumps-vaccine", "mumps-virus") in answers
        assert ("measles-vaccine", "mumps-virus") not in answers

    def test_label_atom_filters(self, knowledge_graph):
        query = parse_c2rpq("q(x) := Pathogen(x), (exhibits)(x, y), (crossReacting)(y, z)")
        answers = eval_c2rpq(query, knowledge_graph)
        assert answers == {("measles-virus",)}

    def test_same_variable_twice_in_atom(self):
        graph = GraphBuilder().edge("a", "r", "a").edge("b", "r", "c").build()
        query = parse_c2rpq("q(x) := (r)(x, x)")
        assert eval_c2rpq(query, graph) == {("a",)}

    def test_empty_graph_has_no_answers(self):
        query = parse_c2rpq("q(x) := A(x)")
        assert eval_c2rpq(query, GraphBuilder().build()) == set()

    def test_boolean_query_empty_tuple_convention(self, knowledge_graph):
        query = parse_c2rpq("q() := Vaccine(x)")
        assert eval_c2rpq(query, knowledge_graph) == {()}

    def test_free_variable_order_respected(self, knowledge_graph):
        query = parse_c2rpq("q(p, v) := (designTarget)(v, a), (exhibits-)(a, p)")
        answers = eval_c2rpq(query, knowledge_graph)
        assert ("measles-virus", "measles-vaccine") in answers


class TestUnionEvaluation:
    def test_union_is_union_of_answers(self, knowledge_graph):
        union = parse_uc2rpq(["q(x) := Vaccine(x)", "q(x) := Pathogen(x)"])
        answers = eval_uc2rpq(union, knowledge_graph)
        assert ("measles-vaccine",) in answers and ("mumps-virus",) in answers

    def test_satisfies_on_union(self, knowledge_graph):
        union = parse_uc2rpq(["q() := (crossReacting)(x, x)", "q() := Vaccine(x)"])
        assert satisfies(knowledge_graph, union)


class TestWitnessingPaths:
    def test_path_exists_and_matches_regex(self, knowledge_graph):
        path = witnessing_path(
            parse_regex("designTarget . crossReacting"),
            knowledge_graph,
            "measles-vaccine",
            "F-protein",
        )
        assert path is not None
        assert [str(symbol) for symbol, _ in path] == ["designTarget", "crossReacting"]
        assert path[-1][1] == "F-protein"

    def test_no_path_returns_none(self, knowledge_graph):
        assert witnessing_path(
            parse_regex("exhibits"), knowledge_graph, "measles-vaccine", "F-protein"
        ) is None

    def test_epsilon_witness_is_empty(self, knowledge_graph):
        assert witnessing_path(parse_regex("<eps>"), knowledge_graph, "H-protein", "H-protein") == []

    def test_witness_on_long_path(self):
        graph = path_graph(6, "A", "r")
        path = witnessing_path(parse_regex("r*"), graph, 0, 6)
        assert path is not None and len(path) == 6
