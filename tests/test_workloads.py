"""Tests for the packaged workloads (medical, FHIR, social, synthetic)."""


from repro.schema import conforms
from repro.containment import schema_has_finmod_cycle
from repro.workloads import fhir, medical, social, synthetic


class TestMedical:
    def test_schemas_match_figure_1(self):
        s0, s1 = medical.source_schema(), medical.target_schema()
        assert s0.node_labels == {"Vaccine", "Antigen", "Pathogen"}
        assert "crossReacting" in s0.edge_labels and "crossReacting" not in s1.edge_labels
        assert "targets" in s1.edge_labels and "targets" not in s0.edge_labels

    def test_sample_graph_conforms(self):
        assert conforms(medical.sample_graph(), medical.source_schema())

    def test_random_instances_conform(self):
        schema = medical.source_schema()
        for seed in range(8):
            assert conforms(medical.random_instance(seed=seed), schema)

    def test_random_instance_sizes(self):
        graph = medical.random_instance(vaccines=10, antigens=12, pathogens=5, seed=0)
        assert len(list(graph.nodes_with_label("Vaccine"))) == 10
        assert len(list(graph.nodes_with_label("Antigen"))) == 12
        assert len(list(graph.nodes_with_label("Pathogen"))) == 5

    def test_transformations_parse(self):
        assert len(medical.migration().rules()) == 6
        assert len(medical.broken_migration().rules()) == 6
        assert len(medical.redundant_migration().rules()) == 7


class TestFhir:
    def test_instances_conform(self):
        schema = fhir.schema_v3()
        for seed in range(5):
            assert conforms(fhir.random_instance(seed=seed), schema)

    def test_migration_output_conforms(self):
        migration = fhir.migration_v3_to_v4()
        target = fhir.schema_v4()
        for seed in range(3):
            output = migration.apply(fhir.random_instance(seed=seed))
            assert conforms(output, target)

    def test_broken_migration_output_violates(self):
        broken = fhir.broken_migration_v3_to_v4()
        target = fhir.schema_v4()
        assert not conforms(broken.apply(fhir.random_instance(seed=0)), target)

    def test_literal_nodes_are_modeled(self):
        assert "HumanName" in fhir.schema_v3().node_labels


class TestSocial:
    def test_instances_conform(self):
        schema = social.schema_v1()
        for seed in range(5):
            assert conforms(social.random_instance(seed=seed), schema)

    def test_reification_output_conforms(self):
        output = social.reification().apply(social.random_instance(seed=1))
        assert conforms(output, social.schema_v2())

    def test_broken_reification_output_violates(self):
        instance = social.random_instance(seed=3, friendship_probability=0.6)
        output = social.broken_reification().apply(instance)
        assert not conforms(output, social.schema_v2())


class TestSynthetic:
    def test_chain_schema_and_instance(self):
        schema = synthetic.chain_schema(4)
        instance = synthetic.chain_instance(4, rows=3, seed=0)
        assert conforms(instance, schema)

    def test_chain_copy_transformation_well_typed(self):
        from repro.analysis import type_check

        schema = synthetic.chain_schema(2)
        result = type_check(synthetic.chain_copy_transformation(2), schema, schema)
        assert result.well_typed

    def test_chain_collapse_produces_shortcuts(self):
        schema = synthetic.chain_schema(3)
        instance = synthetic.chain_instance(3, rows=2, seed=1)
        output = synthetic.chain_collapse_transformation(3).apply(instance)
        assert "shortcut" in output.edge_labels()
        assert output.node_labels() == {"L0", "L3"}

    def test_queries(self):
        assert synthetic.path_query(3).is_acyclic()
        assert synthetic.star_query(4).is_acyclic()
        assert synthetic.path_query(2, with_star=True).size() > synthetic.path_query(2).size()

    def test_cycle_schema_has_finmod_cycle(self):
        assert schema_has_finmod_cycle(synthetic.cycle_schema(3))
        assert not schema_has_finmod_cycle(synthetic.chain_schema(3))
