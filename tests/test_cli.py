"""The ``python -m repro`` command line: subcommand behaviour, report
formats, spec-file loading and backend agreement."""

import json

import pytest

from repro.cli import main
from repro.schema.parser import schema_to_text
from repro.workloads import medical


def test_contain_text_summary(capsys):
    code = main(
        [
            "contain",
            "--left", "p(x) := (designTarget . crossReacting*)(x, y)",
            "--right", "q(x) := Vaccine(x)",
        ]
    )
    assert code == 0
    assert "⊆" in capsys.readouterr().out


def test_contain_json_report_to_stdout(capsys):
    code = main(
        [
            "contain",
            "--workload", "synthetic",
            "--length", "3",
            "--left", "p(x) := (e0 . e1)(x, y)",
            "--right", "q(x) := L0(x)",
            "--json", "-",
        ]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["contained"] is True
    assert report["schema"] == "Chain3"
    assert len(report["fingerprint"]) == 64


def test_contain_reads_schema_files(tmp_path, capsys):
    schema_file = tmp_path / "schema.txt"
    schema_file.write_text(schema_to_text(medical.source_schema()), encoding="utf-8")
    code = main(
        [
            "contain",
            "--schema-file", str(schema_file),
            "--left", "p(x) := Antigen(x)",
            "--right", "q(x) := Vaccine(x)",
            "--json", "-",
        ]
    )
    assert code == 0
    assert json.loads(capsys.readouterr().out)["contained"] is False


@pytest.mark.parametrize(
    "workload, variant, expected_code, expected_well_typed",
    [("medical", "default", 0, True), ("medical", "broken", 1, False), ("social", "default", 0, True)],
)
def test_typecheck_workloads(capsys, workload, variant, expected_code, expected_well_typed):
    code = main(["typecheck", "--workload", workload, "--variant", variant, "--json", "-"])
    assert code == expected_code
    report = json.loads(capsys.readouterr().out)
    assert report["well_typed"] is expected_well_typed
    if not expected_well_typed:
        assert report["failed_statements"]


def test_typecheck_synthetic_has_no_migration():
    with pytest.raises(SystemExit):
        main(["typecheck", "--workload", "synthetic"])


def test_batch_json_report(tmp_path):
    out = tmp_path / "report.json"
    code = main(["batch", "--workload", "medical", "--json", str(out)])
    assert code == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["backend"] == "serial"
    assert report["tasks"] == report["verdicts"]["contained"] + report["verdicts"]["not_contained"]
    assert report["stats"]["engine"]["contains_calls"] == report["tasks"]
    assert len(report["fingerprint"]) == 64


def test_batch_repeat_reports_the_warm_run(capsys):
    code = main(["batch", "--workload", "social", "--repeat", "2", "--json", "-"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    # the second pass is served from the result cache
    assert report["stats"]["engine"]["caches"]["results"]["hits"] >= report["tasks"]


def test_batch_loads_spec_files(tmp_path, capsys):
    spec = {
        "schema": schema_to_text(medical.source_schema()),
        "pairs": [
            {"left": "p(x) := (designTarget)(x, y)", "right": "q(x) := Vaccine(x)"},
            {"left": "p2(x) := Antigen(x)", "right": "q(x) := Vaccine(x)"},
        ],
    }
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(spec), encoding="utf-8")
    code = main(["batch", "--spec", str(spec_file), "--json", "-"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["tasks"] == 2
    assert report["verdicts"] == {"contained": 1, "not_contained": 1}


def test_batch_rejects_malformed_specs(tmp_path):
    spec_file = tmp_path / "bad.json"
    spec_file.write_text(json.dumps({"schema": "schema S { nodes A; }"}), encoding="utf-8")
    with pytest.raises(SystemExit):
        main(["batch", "--spec", str(spec_file)])


def test_bench_asserts_backend_agreement(capsys):
    code = main(
        ["bench", "--workload", "social", "--backends", "serial,thread", "--json", "-"]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["verdicts_identical"] is True
    assert set(report["backends"]) == {"serial", "thread"}
    assert len(set(report["fingerprints"].values())) == 1
    assert report["backends"]["serial"]["speedup_vs_serial"] == 1.0


def test_bench_includes_process_backend(capsys):
    code = main(
        [
            "bench",
            "--workload", "medical",
            "--backends", "serial,process",
            "--workers", "2",
            "--json", "-",
        ]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["verdicts_identical"] is True
    assert "workers" in report["backends"]["process"]["stats"]


def test_bench_rejects_unknown_backends():
    with pytest.raises(SystemExit):
        main(["bench", "--workload", "medical", "--backends", "serial,warp"])


def test_unknown_subcommand_exits_with_usage():
    with pytest.raises(SystemExit):
        main(["conquer"])


def test_bench_automata_suite_json_report(capsys):
    code = main(["bench", "--suite", "automata", "--repeats", "1", "--requests", "2", "--json", "-"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["suite"] == "automata"
    assert set(report) == {"suite", "compile", "enumeration", "kernels", "prefix_sharing", "context"}
    assert report["context"]["cpu_count"] >= 1
    assert report["context"]["rng_seed"] == 1729
    assert report["compile"]["regexes"] > 0
    assert report["compile"]["speedup"] > 0
    # corpus-specific expectation (see bench_automaton_compile.py), not an invariant
    assert report["enumeration"]["minimal_dfa_states"] <= report["enumeration"]["nfa_states"]
    # kernel rows carry both sides of every comparison (equality is asserted
    # inside the harness; speed gates live in bench_automaton_compile.py)
    for row in ("nfa_enumeration", "dfa_enumeration", "batch_acceptance"):
        assert report["kernels"][row]["words"] > 0
        assert report["kernels"][row]["speedup"] > 0
    # the pruned run is observationally identical (asserted inside the harness)
    assert report["prefix_sharing"]["satisfiable"] is False
    assert report["prefix_sharing"]["patterns_checked"] > 0


def test_bench_automata_suite_text_summary(capsys):
    code = main(["bench", "--suite", "automata", "--repeats", "1", "--requests", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "compile:" in out and "prefix sharing:" in out and "kernels" in out


def test_bench_backends_report_carries_context(capsys):
    code = main(["bench", "--workload", "social", "--backends", "serial", "--json", "-"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["suite"] == "backends"
    context = report["context"]
    assert context["cpu_count"] >= 1
    assert context["python_version"].count(".") == 2
    assert context["rng_seed"] == 1729


def test_bench_store_suite_json_report(tmp_path, capsys):
    store_file = tmp_path / "bench-store.db"
    code = main(
        ["bench", "--suite", "store", "--length", "2", "--persist", str(store_file), "--json", "-"]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["suite"] == "store"
    assert report["fingerprints_identical"] is True
    assert report["cold"]["store"]["writes"] >= report["tasks"]
    assert report["warm"]["store"]["hits"] == report["tasks"]
    assert report["store"]["tiers"]["results"] == report["tasks"]
    assert report["context"]["rng_seed"] == 1729
    assert store_file.exists()


def test_batch_with_persist_reports_and_reuses_the_store(tmp_path, capsys):
    store_file = tmp_path / "store.db"
    assert main(["batch", "--workload", "social", "--persist", str(store_file)]) == 0
    capsys.readouterr()
    code = main(["batch", "--workload", "social", "--persist", str(store_file), "--json", "-"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["stats"]["engine"]["store"]["hits"] == report["tasks"]
    assert report["store"]["tiers"]["results"] == report["tasks"]


def test_cache_subcommand_round_trip(tmp_path, capsys):
    store_file = tmp_path / "cache.db"

    assert main(["cache", "warm", "--persist", str(store_file), "--workload", "medical"]) == 0
    assert "warmed with medical" in capsys.readouterr().out

    assert main(["cache", "stats", "--persist", str(store_file), "--json", "-"]) == 0
    stats_report = json.loads(capsys.readouterr().out)
    assert stats_report["tiers"]["results"] == 15
    assert stats_report["disabled"] is False

    assert main(["cache", "export", "--persist", str(store_file)]) == 0
    export_report = json.loads(capsys.readouterr().out)
    assert len(export_report["entries"]) == sum(stats_report["tiers"].values())
    assert {entry["tier"] for entry in export_report["entries"]} == {
        "results", "schema-tboxes",
    }

    assert main(["cache", "clear", "--persist", str(store_file), "--tier", "results"]) == 0
    assert "dropped 15 entries" in capsys.readouterr().out
    assert main(["cache", "stats", "--persist", str(store_file), "--json", "-"]) == 0
    assert "results" not in json.loads(capsys.readouterr().out)["tiers"]


def test_bench_store_suite_refuses_an_unopenable_store(tmp_path):
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("parent is a file, the store can never open")
    with pytest.raises(SystemExit, match="cannot open store"):
        main(
            ["bench", "--suite", "store", "--length", "2",
             "--persist", str(blocker / "store.db")]
        )


def test_cache_stats_on_missing_store_reports_unavailable(tmp_path, capsys):
    code = main(["cache", "stats", "--persist", str(tmp_path / "nope.db")])
    assert code == 0
    assert "unavailable" in capsys.readouterr().out


def test_cache_export_on_missing_store_fails(tmp_path):
    assert main(["cache", "export", "--persist", str(tmp_path / "nope.db")]) == 1


def test_bench_service_suite_json_report(capsys):
    code = main(
        ["bench", "--suite", "service", "--requests", "10", "--clients", "4",
         "--workers", "2", "--length", "2", "--json", "-"]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["suite"] == "service"
    assert report["fingerprints_identical"] is True
    assert report["per_request"]["coalescer"]["largest_batch"] == 1
    assert report["coalesced"]["coalescer"]["submitted"] == 10
    assert report["context"]["rng_seed"] == 1729


def test_serve_stdio_round_trip(monkeypatch, capsys):
    import io
    import sys as real_sys

    lines = [
        json.dumps(
            {"workload": "medical", "left": "p(x) := (designTarget)(x, y)",
             "right": "q(x) := Vaccine(x)", "id": 1}
        ),
        json.dumps({"op": "shutdown"}),
    ]
    monkeypatch.setattr(real_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code = main(["serve", "--stdio", "--coalesce-window", "0"])
    assert code == 0
    responses = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert responses[0]["contained"] is True
    assert responses[0]["id"] == 1
    assert responses[-1] == {"ok": True}


def test_bench_zoo_suite_json_report(capsys):
    code = main(
        ["bench", "--suite", "zoo", "--requests", "12", "--backends", "serial,thread",
         "--json", "-"]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["suite"] == "zoo"
    assert set(report["families"]) == {"property", "tree-device", "atm-fragments"}
    assert report["verdicts_identical"] is True
    assert set(report["backends"]) == {"serial", "thread"}
    assert len(set(report["fingerprints"].values())) == 1


def test_replay_record_then_replay_round_trip(tmp_path, capsys):
    trace_path = tmp_path / "trace.ndjson"
    code = main(["replay", "--record", str(trace_path), "--requests", "20", "--json", "-"])
    assert code == 0
    record_report = json.loads(capsys.readouterr().out)
    assert record_report["stamped"] == 20
    assert trace_path.exists()

    code = main(["replay", str(trace_path), "--clients", "4", "--json", "-"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["matches"] is True
    assert report["stamped"] == 20
    assert report["mismatches"] == []
    assert set(report["latency"]) == {"p50_seconds", "p95_seconds", "p99_seconds"}
    assert report["coalescer"]["submitted"] == 20


def test_replay_exit_code_flags_a_tampered_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.ndjson"
    assert main(["replay", "--record", str(trace_path), "--requests", "10"]) == 0
    lines = trace_path.read_text(encoding="utf-8").splitlines()
    tampered = json.loads(lines[1])
    tampered["result_fingerprint"] = "0" * 64
    lines[1] = json.dumps(tampered, sort_keys=True, separators=(",", ":"))
    trace_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    code = main(["replay", str(trace_path), "--clients", "2"])
    assert code == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_recorded_trace_replays_through_serve_stdio(monkeypatch, tmp_path, capsys):
    """The acceptance loop: record → ``python -m repro serve --stdio`` →
    every response fingerprint equals the trace's stamped expectation, in
    trace order (the stdio transport answers in input order)."""
    import io
    import sys as real_sys

    trace_path = tmp_path / "trace.ndjson"
    assert main(["replay", "--record", str(trace_path), "--requests", "15"]) == 0
    capsys.readouterr()

    expected = []
    lines = []
    for line in trace_path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if "request" not in record:
            continue
        expected.append(record["result_fingerprint"])
        lines.append(json.dumps(record["request"]))
    monkeypatch.setattr(real_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code = main(["serve", "--stdio", "--coalesce-window", "2"])
    assert code == 0
    responses = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert [response["fingerprint"] for response in responses] == expected
