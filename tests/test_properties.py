"""Property-based tests (hypothesis) for the core data structures and the
invariants the paper's constructions rely on."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.graph import Graph, graph_from_dict, graph_to_dict
from repro.rpq import (
    build_nfa,
    concat,
    edge,
    eval_regex,
    node,
    star,
    union,
)
from repro.rpq.regex import EPSILON
from repro.schema import Multiplicity, Schema, conforms
from repro.dl import conformance_tbox

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
NODE_LABELS = ["A", "B", "C"]
EDGE_LABELS = ["r", "s"]

label_strategy = st.sampled_from(NODE_LABELS)
edge_label_strategy = st.sampled_from(EDGE_LABELS)
signed_edge_strategy = st.sampled_from(["r", "s", "r-", "s-"])


@st.composite
def graphs(draw, max_nodes=5):
    """Random small labeled graphs."""
    count = draw(st.integers(min_value=0, max_value=max_nodes))
    graph = Graph()
    for index in range(count):
        labels = draw(st.sets(label_strategy, max_size=2))
        graph.add_node(index, labels)
    if count:
        edge_count = draw(st.integers(min_value=0, max_value=2 * count))
        for _ in range(edge_count):
            source = draw(st.integers(min_value=0, max_value=count - 1))
            target = draw(st.integers(min_value=0, max_value=count - 1))
            graph.add_edge(source, draw(edge_label_strategy), target)
    return graph


@st.composite
def regexes(draw, depth=3):
    """Random small two-way regular expressions."""
    if depth == 0:
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return node(draw(label_strategy))
        if choice == 1:
            return edge(draw(signed_edge_strategy))
        return EPSILON
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice in (0, 1):
        return draw(regexes(depth=0))
    if choice == 2:
        return concat(draw(regexes(depth=depth - 1)), draw(regexes(depth=depth - 1)))
    if choice == 3:
        return union(draw(regexes(depth=depth - 1)), draw(regexes(depth=depth - 1)))
    return star(draw(regexes(depth=depth - 1)))


common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------- #
# graph invariants
# --------------------------------------------------------------------------- #
class TestGraphProperties:
    @common_settings
    @given(graphs())
    def test_json_round_trip(self, graph):
        assert graph_from_dict(graph_to_dict(graph)) == graph

    @common_settings
    @given(graphs())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @common_settings
    @given(graphs())
    def test_edge_count_consistent_with_edges(self, graph):
        assert graph.edge_count() == sum(1 for _ in graph.edges())

    @common_settings
    @given(graphs())
    def test_successor_symmetry(self, graph):
        from repro.graph import forward, inverse

        for source, label, target in graph.edges():
            assert target in graph.successors(source, forward(label))
            assert source in graph.successors(target, inverse(label))

    @common_settings
    @given(graphs(), st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
    def test_merge_preserves_other_edges(self, graph, keep, drop):
        if not graph.has_node(keep) or not graph.has_node(drop) or keep == drop:
            return
        before = {
            (s, l, t)
            for s, l, t in graph.edges()
            if keep not in (s, t) and drop not in (s, t)
        }
        graph.merge_nodes(keep, drop)
        after = set(graph.edges())
        assert before <= after


# --------------------------------------------------------------------------- #
# regular expression / automaton invariants
# --------------------------------------------------------------------------- #
class TestRegexProperties:
    @common_settings
    @given(regexes())
    def test_reverse_is_involutive(self, expr):
        assert expr.reverse().reverse() == expr

    @common_settings
    @given(regexes())
    def test_enumerated_words_are_accepted(self, expr):
        nfa = build_nfa(expr)
        for word in nfa.enumerate_words(max_length=6, max_words=30):
            assert nfa.accepts(word)

    @common_settings
    @given(regexes())
    def test_nullable_agrees_with_automaton(self, expr):
        assert expr.nullable() == build_nfa(expr).accepts_epsilon()

    @common_settings
    @given(regexes(), graphs())
    def test_evaluation_matches_reversed_expression(self, expr, graph):
        forward_answers = eval_regex(expr, graph)
        backward_answers = eval_regex(expr.reverse(), graph)
        assert {(b, a) for a, b in forward_answers} == backward_answers

    @common_settings
    @given(regexes(), graphs())
    def test_star_monotone(self, expr, graph):
        base = eval_regex(expr, graph)
        starred = eval_regex(star(expr), graph)
        assert base <= starred
        assert {(n, n) for n in graph.nodes()} <= starred

    @common_settings
    @given(regexes(), regexes(), graphs())
    def test_union_is_union_of_answer_sets(self, left, right, graph):
        assert eval_regex(union(left, right), graph) == eval_regex(left, graph) | eval_regex(
            right, graph
        )

    @common_settings
    @given(regexes(), regexes(), graphs())
    def test_concat_is_composition(self, left, right, graph):
        left_answers = eval_regex(left, graph)
        right_answers = eval_regex(right, graph)
        composed = {(a, c) for a, b in left_answers for b2, c in right_answers if b == b2}
        assert eval_regex(concat(left, right), graph) == composed


# --------------------------------------------------------------------------- #
# schema / conformance invariants
# --------------------------------------------------------------------------- #
class TestSchemaProperties:
    @common_settings
    @given(graphs())
    def test_conformance_agrees_with_dl_characterisation(self, graph):
        schema = Schema(NODE_LABELS, EDGE_LABELS, name="P")
        for a in NODE_LABELS:
            for r in EDGE_LABELS:
                for b in NODE_LABELS:
                    schema.set(a, r, b, Multiplicity.STAR)
                    schema.set(a, f"{r}-", b, Multiplicity.STAR)
        direct = conforms(graph, schema)
        via_tbox = (
            graph.node_labels() <= schema.node_labels
            and graph.edge_labels() <= schema.edge_labels
            and conformance_tbox(schema).holds_in(graph)
        )
        assert direct == via_tbox

    @common_settings
    @given(st.sets(st.sampled_from(NODE_LABELS), min_size=1), st.sets(st.sampled_from(EDGE_LABELS)))
    def test_schema_l0_round_trip(self, node_labels, edge_labels):
        from repro.dl import schema_from_l0, schema_to_l0

        schema = Schema(node_labels, edge_labels, name="R")
        rebuilt = schema_from_l0(schema_to_l0(schema), node_labels, edge_labels)
        # every unmentioned triple is 0 in the original; the round trip maps it
        # to 0 as well because T_S contains the ¬∃ statement
        assert rebuilt == schema

    @common_settings
    @given(graphs())
    def test_transformation_output_conforms_to_elicited_schema_shape(self, graph):
        """Monotone invariant: the identity-style copy of a graph keeps counts."""
        from repro.workloads.synthetic import chain_copy_transformation

        transformation = chain_copy_transformation(1)
        output = transformation.apply(graph)
        # only L0/L1-labeled nodes are copied; the output never has more nodes
        assert output.node_count() <= graph.node_count()
