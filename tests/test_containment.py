"""End-to-end tests of containment modulo schema (Theorem 5.1), including the
paper's worked examples and cross-validation against brute-force search over
small finite graphs."""

import pytest

from repro.containment import (
    ContainmentConfig,
    ContainmentSolver,
    contains,
    enumerate_conforming_graphs,
    find_counterexample,
)
from repro.exceptions import AcyclicityError
from repro.rpq import UC2RPQ, eval_uc2rpq, parse_c2rpq, parse_uc2rpq
from repro.schema import Schema, conforms
from repro.workloads import medical


@pytest.fixture(scope="module")
def s0():
    return medical.source_schema()


@pytest.fixture(scope="module")
def solver(s0):
    return ContainmentSolver(s0)


class TestPaperExamples:
    def test_example_45_vaccine_targets_something(self, solver):
        """(Vaccine)(x) ⊆_S0 ∃y.(designTarget·crossReacting*)(x,y) — Example 4.5."""
        left = parse_c2rpq("p(x) := Vaccine(x)")
        right = parse_c2rpq("q(x) := (designTarget . crossReacting*)(x, y)")
        result = solver.contains(left, right)
        assert result.contained and result.conclusive

    def test_example_44_targets_only_from_vaccines(self, solver):
        """∃y.(designTarget·crossReacting*)(x,y) ⊆_S0 (Vaccine)(x) — Example 4.4."""
        left = parse_c2rpq("p(x) := (designTarget . crossReacting*)(x, y)")
        right = parse_c2rpq("q(x) := Vaccine(x)")
        result = solver.contains(left, right)
        assert result.contained and result.conclusive

    def test_design_target_not_contained_in_cross_reaction(self, solver):
        left = parse_c2rpq("p(x) := Antigen(x)")
        right = parse_c2rpq("q(x) := (crossReacting)(x, y)")
        result = solver.contains(left, right)
        assert not result.contained

    def test_example_52_finite_containment_needs_cycle_reversal(self, example52_schema):
        """P = ∃x.r(x,x) ⊆_S Q = ∃x,y.(r·s⁺·r)(x,y) holds over finite graphs
        (Example 5.2) but fails over unrestricted models (Example 5.3)."""
        left = parse_c2rpq("p() := (r)(x, x)")
        right = parse_c2rpq("q() := (r . s+ . r)(x, y)")
        with_reversal = contains(left, right, example52_schema)
        assert with_reversal.contained and with_reversal.conclusive
        without = contains(
            left, right, example52_schema, ContainmentConfig(apply_completion=False)
        )
        assert not without.contained

    def test_example_52_on_finite_instances(self, example52_schema):
        """Sanity: on every small conforming finite graph, r(x,x) implies r·s⁺·r."""
        left = parse_uc2rpq(["p() := (r)(x, x)"])
        right = parse_uc2rpq(["q() := (r . s+ . r)(x, y)"])
        seen = 0
        for graph in enumerate_conforming_graphs(example52_schema, max_nodes=3, max_graphs=200):
            seen += 1
            if eval_uc2rpq(left, graph):
                assert eval_uc2rpq(right, graph)
        assert seen > 0


class TestGeneralBehaviour:
    def test_reflexivity(self, solver):
        query = parse_c2rpq("q(x) := (designTarget)(x, y)")
        assert solver.contains(query, query).contained

    def test_union_on_the_right(self, solver):
        left = parse_c2rpq("p(x) := (designTarget)(x, y)")
        right = parse_uc2rpq(
            ["q(x) := (designTarget . crossReacting)(x, y)", "q(x) := (designTarget)(x, y)"]
        )
        assert solver.contains(left, right).contained

    def test_union_on_the_left(self, solver):
        left = parse_uc2rpq(["p(x) := Vaccine(x)", "p(x) := (designTarget)(x, y)"])
        right = parse_uc2rpq(["q(x) := Vaccine(x)"])
        assert solver.contains(left, right).contained

    def test_not_contained_with_union_left(self, solver):
        left = parse_uc2rpq(["p(x) := Vaccine(x)", "p(x) := Pathogen(x)"])
        right = parse_uc2rpq(["q(x) := Vaccine(x)"])
        assert not solver.contains(left, right).contained

    def test_schema_constraints_enable_containment(self, s0):
        # without the schema, having a design target does not imply being a
        # vaccine; the schema's typing of designTarget edges makes it so
        left = parse_c2rpq("p(x) := (designTarget)(x, y)")
        right = parse_c2rpq("q(x) := Vaccine(x)")
        loose = Schema(["Vaccine", "Antigen", "Pathogen"], ["designTarget"], name="loose")
        for a in loose.node_labels:
            for b in loose.node_labels:
                loose.set_edge(a, "designTarget", b, "*", "*")
        assert contains(left, right, s0).contained
        assert not contains(left, right, loose).contained

    def test_boolean_queries(self, solver):
        left = parse_c2rpq("p() := (crossReacting)(x, y)")
        right = parse_c2rpq("q() := Antigen(x)")
        assert solver.contains(left, right).contained
        assert not solver.contains(right, left).contained

    def test_cyclic_left_allowed(self, solver):
        left = parse_c2rpq("p() := (crossReacting)(x, x)")
        right = parse_c2rpq("q() := Antigen(x)")
        assert solver.contains(left, right).contained

    def test_cyclic_right_rejected(self, solver):
        left = parse_c2rpq("p() := Antigen(x)")
        right = parse_c2rpq("q() := (crossReacting)(x, x)")
        with pytest.raises(AcyclicityError):
            solver.contains(left, right)

    def test_empty_left_always_contained(self, solver):
        assert solver.contains(UC2RPQ([], name="false"), parse_c2rpq("q(x) := Vaccine(x)")).contained

    def test_satisfiable_modulo_schema(self, solver):
        satisfiable = parse_c2rpq("p() := (exhibits)(x, y), (crossReacting)(y, z)")
        assert not solver.satisfiable(satisfiable).contained
        unsatisfiable = parse_c2rpq("p() := (exhibits)(x, y), Vaccine(y)")
        assert solver.satisfiable(unsatisfiable).contained

    def test_equivalence_helper(self, solver):
        left = parse_c2rpq("p(x) := Antigen(x)")
        right = parse_c2rpq("q(x) := (crossReacting)(x, y)")
        assert not solver.equivalent(left, right)
        assert solver.equivalent(left, left)

    def test_unary_projection_contained_because_of_schema(self, solver):
        # ∃y.(designTarget·crossReacting*)(x,y) ⊆ ∃y.designTarget(x,y): the
        # source of such a path is a Vaccine and every Vaccine has a design
        # target, so the *unary* projections are contained even though the
        # binary queries are not
        left = parse_c2rpq("p(x) := (designTarget . crossReacting*)(x, y)")
        right = parse_c2rpq("q(x) := (designTarget)(x, y)")
        assert solver.contains(left, right).contained
        binary_left = parse_c2rpq("p(x, y) := (designTarget . crossReacting*)(x, y)")
        binary_right = parse_c2rpq("q(x, y) := (designTarget)(x, y)")
        assert not solver.contains(binary_left, binary_right).contained

    def test_result_summary_and_metadata(self, solver):
        result = solver.contains(
            parse_c2rpq("p(x) := Vaccine(x)"),
            parse_c2rpq("q(x) := (designTarget)(x, y)"),
        )
        assert "⊆" in result.summary() or "⊄" in result.summary()
        assert result.tbox_size > 0
        assert result.elapsed_seconds >= 0

    def test_witness_pattern_for_non_containment(self, solver):
        result = solver.contains(
            parse_c2rpq("p(x) := Antigen(x)"),
            parse_c2rpq("q(x) := (crossReacting)(x, y)"),
        )
        assert not result.contained
        assert result.witness_pattern is not None


class TestCrossValidation:
    """Agreement between the decision procedure and brute-force enumeration."""

    CASES = [
        ("p(x) := Vaccine(x)", "q(x) := (designTarget)(x, y)", True),
        ("p(x) := (designTarget)(x, y)", "q(x) := Vaccine(x)", True),
        ("p(x) := Antigen(x)", "q(x) := (crossReacting)(x, y)", False),
        ("p(x) := (crossReacting)(x, y)", "q(x) := Antigen(x)", True),
        ("p(x) := Pathogen(x)", "q(x) := (exhibits)(x, y)", True),
        ("p(x) := (exhibits)(x, y)", "q(x) := (designTarget)(x, y)", False),
        ("p(x) := (designTarget)(x, y), (crossReacting)(y, z)", "q(x) := Vaccine(x)", True),
    ]

    @pytest.mark.parametrize("left_text,right_text,expected", CASES)
    def test_against_expected(self, solver, left_text, right_text, expected):
        result = solver.contains(parse_c2rpq(left_text), parse_c2rpq(right_text))
        assert result.contained is expected

    @pytest.mark.parametrize("left_text,right_text,expected", CASES)
    def test_against_brute_force(self, s0, left_text, right_text, expected):
        left = parse_uc2rpq([left_text])
        right = parse_uc2rpq([right_text])
        counterexample = find_counterexample(left, right, s0, max_nodes=3, max_graphs=4000)
        if counterexample is not None:
            # sound direction: an explicit counterexample forces non-containment
            assert expected is False
            assert conforms(counterexample.graph, s0)
            assert counterexample.answer in eval_uc2rpq(left, counterexample.graph)
            assert counterexample.answer not in eval_uc2rpq(right, counterexample.graph)
