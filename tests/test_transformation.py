"""Tests for node constructors, rules, transformations and their application
semantics (Section 4), including Example 4.1."""

import pytest

from repro.exceptions import ConstructorError, ParseError, TransformationError
from repro.graph import GraphBuilder
from repro.rpq import parse_c2rpq
from repro.schema import conforms
from repro.transform import (
    ConstructedNode,
    ConstructorRegistry,
    EdgeRule,
    NodeConstructor,
    NodeRule,
    Transformation,
    parse_transformation,
)
from repro.workloads import medical, social


class TestConstructors:
    def test_constructed_nodes_are_terms(self):
        constructor = NodeConstructor("fV", 1, "Vaccine")
        term = constructor("v1")
        assert isinstance(term, ConstructedNode)
        assert str(term) == "fV(v1)"

    def test_injectivity(self):
        constructor = NodeConstructor("fV", 1)
        assert constructor("a") == constructor("a")
        assert constructor("a") != constructor("b")

    def test_disjoint_ranges_across_names(self):
        assert NodeConstructor("fV", 1)("a") != NodeConstructor("fA", 1)("a")

    def test_arity_checked(self):
        with pytest.raises(ConstructorError):
            NodeConstructor("fM", 2)("only-one")

    def test_binary_constructor(self):
        member = NodeConstructor("fM", 2)("alice", "admins")
        assert member.arguments == ("alice", "admins")

    def test_registry_one_constructor_per_label(self):
        registry = ConstructorRegistry()
        registry.register(NodeConstructor("fV", 1, "Vaccine"))
        with pytest.raises(ConstructorError):
            registry.register(NodeConstructor("fOther", 1, "Vaccine"))

    def test_registry_consistent_arity(self):
        registry = ConstructorRegistry()
        registry.register(NodeConstructor("fV", 1))
        with pytest.raises(ConstructorError):
            registry.register(NodeConstructor("fV", 2))

    def test_registry_lookup(self):
        registry = ConstructorRegistry()
        registry.register(NodeConstructor("fV", 1, "Vaccine"))
        assert registry.for_label("Vaccine").name == "fV"
        assert registry.by_name("fV").label == "Vaccine"


class TestRules:
    def test_node_rule_arity_must_match(self):
        body = parse_c2rpq("b(x) := Vaccine(x)")
        with pytest.raises(TransformationError):
            NodeRule("Vaccine", NodeConstructor("fV", 2), ("x",), body)

    def test_cyclic_body_rejected(self):
        body = parse_c2rpq("b(x) := (crossReacting)(x, x)")
        with pytest.raises(TransformationError):
            NodeRule("Antigen", NodeConstructor("fA", 1), ("x",), body)

    def test_head_variables_must_occur(self):
        body = parse_c2rpq("b(y) := Antigen(y)")
        with pytest.raises(TransformationError):
            NodeRule("Antigen", NodeConstructor("fA", 1), ("x",), body)

    def test_edge_rule_head_tuples_disjoint(self):
        body = parse_c2rpq("b(x) := (crossReacting)(x, y)")
        with pytest.raises(TransformationError):
            EdgeRule(
                "targets",
                NodeConstructor("fV", 1),
                ("x",),
                NodeConstructor("fA", 1),
                ("x",),
                body,
            )

    def test_rule_rendering(self):
        body = parse_c2rpq("b(x, y) := (designTarget)(x, y)")
        rule = EdgeRule(
            "targets", NodeConstructor("fV", 1), ("x",), NodeConstructor("fA", 1), ("y",), body
        )
        assert "targets(fV(x), fA(y))" in str(rule)


class TestApplication:
    def test_example_41_on_sample_graph(self, medical_graph, medical_target_schema):
        output = medical.migration().apply(medical_graph)
        assert conforms(output, medical_target_schema)
        fV, fA = NodeConstructor("fV", 1), NodeConstructor("fA", 1)
        # the design target is always targeted
        assert output.has_edge(fV("measles-vaccine"), "targets", fA("H-protein"))
        # ... and so are antigens reachable through cross-reactions (Example 1.1)
        assert output.has_edge(fV("measles-vaccine"), "targets", fA("F-protein"))
        assert not output.has_edge(fV("mumps-vaccine"), "targets", fA("F-protein"))
        # crossReacting edges are gone
        assert "crossReacting" not in output.edge_labels()

    def test_output_node_identity_controlled_by_constructors(self, medical_graph):
        output = medical.migration().apply(medical_graph)
        antigens_in = {n for n in medical_graph.nodes() if medical_graph.has_label(n, "Antigen")}
        antigens_out = set(output.nodes_with_label("Antigen"))
        assert len(antigens_in) == len(antigens_out)

    def test_unlabeled_output_nodes_possible(self):
        # an edge rule using a constructor with no node rule leaves nodes unlabeled
        body = parse_c2rpq("b(x, y) := (r)(x, y)")
        transformation = Transformation(
            [EdgeRule("s", NodeConstructor("f", 1), ("x",), NodeConstructor("g", 1), ("y",), body)]
        )
        output = transformation.apply(GraphBuilder().edge("a", "r", "b").build())
        assert output.edge_count() == 1
        assert all(not output.labels(n) for n in output.nodes())

    def test_empty_transformation_produces_empty_graph(self, medical_graph):
        assert Transformation().apply(medical_graph).is_empty()

    def test_binary_constructor_reification(self, social_schemas):
        source_schema, target_schema = social_schemas
        instance = social.random_instance(seed=2)
        assert conforms(instance, source_schema)
        output = social.reification().apply(instance)
        assert conforms(output, target_schema)
        memberships = list(output.nodes_with_label("Membership"))
        assert memberships
        # every membership node records the (person, group) pair it reifies
        for membership in memberships:
            assert len(membership.arguments) == 2

    def test_transformation_signature(self):
        transformation = medical.migration()
        assert transformation.node_labels() == {"Vaccine", "Antigen", "Pathogen"}
        assert transformation.edge_labels() == {"designTarget", "targets", "exhibits"}
        assert transformation.input_edge_labels() == {"designTarget", "crossReacting", "exhibits"}
        assert transformation.constructor_for_label("Vaccine").name == "fV"
        assert transformation.label_of_constructor("fA") == "Antigen"

    def test_callable_alias(self, medical_graph):
        transformation = medical.migration()
        assert transformation(medical_graph) == transformation.apply(medical_graph)

    def test_describe(self):
        assert "targets(fV(x), fA(y))" in medical.migration().describe()


class TestParser:
    def test_parse_example_41(self):
        transformation = medical.migration()
        assert len(transformation.node_rules) == 3
        assert len(transformation.edge_rules) == 3

    def test_rule_bodies_parsed_as_regexes(self):
        transformation = medical.migration()
        targets_rule = next(r for r in transformation.edge_rules if r.edge_label == "targets")
        assert targets_rule.body.edge_labels() == {"designTarget", "crossReacting"}

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_transformation("transformation T { Vaccine(fV(x)) : (Vaccine)(x); }")

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            parse_transformation("Vaccine(fV(x)) <- (Vaccine)(x);")

    def test_three_constructor_terms_rejected(self):
        with pytest.raises(ParseError):
            parse_transformation(
                "transformation T { r(f(x), g(y), h(z)) <- (Vaccine)(x); }"
            )

    def test_comments_ignored(self):
        transformation = parse_transformation(
            """
            transformation T {
              # copy every antigen
              Antigen(fA(x)) <- (Antigen)(x);
            }
            """
        )
        assert len(transformation.node_rules) == 1
