"""Shared fixtures: the paper's running examples and small helper objects."""

import pytest

from repro.schema import Schema
from repro.workloads import medical, fhir, social


@pytest.fixture(scope="session")
def medical_source_schema():
    return medical.source_schema()


@pytest.fixture(scope="session")
def medical_target_schema():
    return medical.target_schema()


@pytest.fixture(scope="session")
def medical_migration():
    return medical.migration()


@pytest.fixture(scope="session")
def medical_graph():
    return medical.sample_graph()


@pytest.fixture(scope="session")
def example52_schema():
    """The schema of Example 5.2 / Figure 2: s is '+ outgoing, at most one
    incoming', r is unconstrained."""
    schema = Schema(["A"], ["s", "r"], name="S52")
    schema.set_edge("A", "s", "A", "+", "?")
    schema.set_edge("A", "r", "A", "*", "*")
    return schema


@pytest.fixture(scope="session")
def fhir_schemas():
    return fhir.schema_v3(), fhir.schema_v4()


@pytest.fixture(scope="session")
def social_schemas():
    return social.schema_v1(), social.schema_v2()
