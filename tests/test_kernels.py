"""Tests for the dense/bitset automaton kernels (:mod:`repro.core.kernels`).

Three layers of coverage:

* direct edge cases of :class:`DenseDFA` that the happy-path corpus never
  builds — empty alphabets, automata without final states, single-state
  loops, words carrying symbol ids the automaton has never seen;
* dense ↔ dict-walk equivalence: hypothesis-driven random regexes and the
  seeded zoo corpus generator, asserting word-for-word identical
  enumerations and acceptance verdicts between the kernel paths the public
  API routes through and the historical dict-walk references kept verbatim;
* numpy-path identity: the optional accelerator must return bit-identical
  results to the stdlib kernels (it is gated by ``REPRO_NO_NUMPY`` and by
  size thresholds, so the private implementations are exercised directly —
  the thresholds would otherwise hide the numpy code on small automata).
"""

import random
from array import array

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.dfa import DFA, determinize
from repro.core.interning import SymbolTable
from repro.core.kernels import (
    NUMPY_DISABLE_VARIABLE,
    DenseDFA,
    bitset_closure,
    numpy_disabled,
    numpy_module,
)
from repro.rpq.automaton import build_nfa
from repro.rpq.parser import parse_regex
from repro.workloads.zoo import random_regex

MAX_LENGTH = 6
MAX_STATE_REPEATS = 2
MAX_WORDS = 200


def fresh_table() -> SymbolTable:
    """A private table per test: no cross-test id leakage."""
    return SymbolTable()


# --------------------------------------------------------------------------- #
# DenseDFA edge cases
# --------------------------------------------------------------------------- #
def test_empty_alphabet_accepting_initial():
    # ε-only language: one state, no columns, initial is final
    dense = DenseDFA(1, 0, [0], (), array("i"))
    assert dense.width == 0
    assert dense.transitions == 0
    assert dense.accepts_ids(()) is True
    assert dense.accepts_ids((7,)) is False
    assert dense.accepts_batch([(), (7,), (0, 1)]) == [True, False, False]
    assert not dense.is_empty()
    assert dense.shortest_witness_ids() == ()
    assert dense.reachable() == {0}
    assert dense.distance_to_final() == (0,)


def test_empty_alphabet_through_dfa_wrapper():
    table = fresh_table()
    dfa = DFA.from_dense(table, DenseDFA(1, 0, [0], (), array("i")))
    assert dfa.alphabet_ids() == ()
    assert dfa.transition_count() == 0
    assert list(dfa.enumerate_words(MAX_LENGTH, MAX_WORDS)) == [()]
    assert list(dfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_WORDS)) == [()]
    # the lazy dict rows rebuild correctly for a zero-width table
    assert dfa._delta == ({},)


def test_no_final_state_is_the_empty_language():
    table = fresh_table()
    a = table.intern(parse_regex("a"))  # intern one symbol id
    dense = DenseDFA(2, 0, [], (a,), array("i", [1, 1]))
    assert dense.is_empty()
    assert dense.shortest_witness_ids() is None
    assert dense.distance_to_final() == (-1, -1)
    assert dense.accepts_batch([(), (a,), (a, a)]) == [False, False, False]
    dfa = DFA.from_dense(table, dense)
    assert list(dfa.enumerate_words(MAX_LENGTH, MAX_WORDS)) == []
    assert list(dfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_WORDS)) == []
    minimal = dfa.minimize()
    assert minimal.is_empty()


def test_single_state_loop_enumerates_a_star():
    table = fresh_table()
    a = table.intern(parse_regex("a"))
    dense = DenseDFA(1, 0, [0], (a,), array("i", [0]))
    assert dense.accepts_ids((a,) * 50)
    assert dense.distance_to_final() == (0,)
    dfa = DFA.from_dense(table, dense)
    words = list(dfa.enumerate_words(3, MAX_WORDS))
    symbol = table.symbol(a)
    assert words == [(), (symbol,), (symbol, symbol), (symbol, symbol, symbol)]
    assert words == list(dfa._enumerate_words_dictwalk(3, MAX_WORDS))


def test_unknown_symbol_ids_are_rejected_not_errors():
    table = fresh_table()
    a = table.intern(parse_regex("a"))
    dense = DenseDFA(1, 0, [0], (a,), array("i", [0]))
    unknown = a + 999
    assert dense.successor(0, unknown) == -1
    assert dense.column(unknown) == -1
    assert dense.accepts_ids((a, unknown, a)) is False
    # batch path must agree, including ids far beyond the table's range
    words = [(a,), (unknown,), (a, unknown), (-5,), ()]
    assert dense.accepts_batch(words) == [dense.accepts_ids(word) for word in words]


def test_dense_bytes_roundtrip_preserves_everything():
    table = fresh_table()
    nfa = build_nfa(parse_regex("(a + b)* . c"))
    dfa = determinize(nfa, table).minimize()
    dense = dfa.dense()
    clone = DenseDFA.from_bytes(
        dense.num_states, dense.initial, dense.final, dense.alphabet, dense.tobytes()
    )
    assert clone.table == dense.table
    assert clone.final == dense.final
    assert clone.alphabet == dense.alphabet
    assert clone.transitions == dense.transitions
    assert clone.distance_to_final() == dense.distance_to_final()
    reattached = DFA.from_dense(table, clone)
    assert list(reattached.enumerate_words(MAX_LENGTH, MAX_WORDS)) == list(
        dfa.enumerate_words(MAX_LENGTH, MAX_WORDS)
    )


def test_from_rows_matches_manual_table():
    rows = [{5: 1, 9: 0}, {9: 1}]
    dense = DenseDFA.from_rows(2, 0, [1], (5, 9), rows)
    assert list(dense.table) == [1, 0, -1, 1]
    assert dense.transitions == 3


def test_bitset_closure_reflexive_transitive():
    closure = bitset_closure(4, [(0, 1), (1, 2)])
    assert closure[0] == 0b0111
    assert closure[1] == 0b0110
    assert closure[2] == 0b0100
    assert closure[3] == 0b1000


def test_subset_construct_mirrors_determinize():
    table = fresh_table()
    nfa = build_nfa(parse_regex("(a . b)+ + a . b . a . b"))
    dfa = determinize(nfa, table)
    # the DFA's dense form came out of subset_construct; its alphabet must be
    # exactly the used symbol ids in canonical order
    assert dfa.dense().alphabet == dfa.alphabet_ids()
    for word in dfa.enumerate_words(MAX_LENGTH, MAX_WORDS):
        assert nfa.accepts(word)


# --------------------------------------------------------------------------- #
# dense ↔ dict equivalence (hypothesis + zoo corpus)
# --------------------------------------------------------------------------- #
def assert_kernels_match_dictwalk(regex, table: SymbolTable) -> None:
    """Every kernel output equals its dict-walk reference for *regex*."""
    nfa = build_nfa(regex)
    kernel_words = tuple(
        nfa.enumerate_words(
            max_length=MAX_LENGTH, max_state_repeats=MAX_STATE_REPEATS, max_words=MAX_WORDS
        )
    )
    reference_words = tuple(
        nfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)
    )
    assert kernel_words == reference_words

    dfa = determinize(nfa, table).minimize()
    dense = dfa.dense()
    kernel_dfa_words = tuple(dfa.enumerate_words(MAX_LENGTH, MAX_WORDS))
    assert kernel_dfa_words == tuple(dfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_WORDS))

    # acceptance parity over accepted words, truncations and an unknown id
    id_words = [tuple(table.known(symbol) for symbol in word) for word in kernel_dfa_words]
    id_words.extend(word[1:] for word in id_words if word)
    id_words.append((max(dense.alphabet, default=0) + 17,))
    assert dense.accepts_batch(id_words) == [dfa.accepts_ids(word) for word in id_words]

    # structural invariants of the dense form
    assert dense.alphabet == dfa.alphabet_ids()
    assert dense.transitions == dfa.transition_count()
    assert dfa.is_empty() == (len(kernel_dfa_words) == 0)


@st.composite
def zoo_regexes(draw):
    """Seeded zoo-generator regexes, sized like the workload corpus."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    depth = draw(st.integers(min_value=1, max_value=3))
    rng = random.Random(seed)
    return random_regex(rng, ("a", "b", "c"), depth=depth)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(zoo_regexes())
def test_dense_equals_dictwalk_over_zoo_regexes(regex):
    assert_kernels_match_dictwalk(regex, SymbolTable())


def test_dense_equals_dictwalk_over_fixed_corpus():
    for spec in (
        "a*",
        "(a + b)* . c",
        "(a + a . a)*",
        "b- . (a + c)* . b",
        "(a . (b + c))* . d?",
    ):
        assert_kernels_match_dictwalk(parse_regex(spec), fresh_table())


# --------------------------------------------------------------------------- #
# numpy path identity
# --------------------------------------------------------------------------- #
def test_numpy_disable_variable_parsing(monkeypatch):
    for value, expected in (("1", True), ("true", True), ("0", False), ("", False)):
        monkeypatch.setenv(NUMPY_DISABLE_VARIABLE, value)
        assert numpy_disabled() is expected
        if expected:
            assert numpy_module() is None
    monkeypatch.delenv(NUMPY_DISABLE_VARIABLE)


def test_numpy_paths_match_stdlib_bit_for_bit(monkeypatch):
    monkeypatch.delenv(NUMPY_DISABLE_VARIABLE, raising=False)
    np = numpy_module()
    if np is None:
        pytest.skip("numpy not importable in this environment")
    table = fresh_table()
    for spec in ("(a + b + c)* . d . (a + b)*", "a . b . c+ . d . a", "(a . b)+"):
        dfa = determinize(build_nfa(parse_regex(spec)), table).minimize()
        dense = dfa.dense()
        # the size thresholds would route these small automata to the stdlib
        # loops, so call both implementations directly
        assert dense._distance_to_final_numpy(np) == dense._distance_to_final_stdlib()
        words = [tuple(table.known(s) for s in word) for word in dfa.enumerate_words(5, 50)]
        words.append((10_000,))
        words.append(())
        stdlib_verdicts = [dense.accepts_ids(word) for word in words]
        assert dense._accepts_batch_numpy(np, words) == stdlib_verdicts
