"""The process-parallel backend: routing, determinism across backends,
pickling boundaries, stats merging and failure propagation.

The central invariant mirrors `tests/test_engine.py`'s: whatever backend
evaluates a batch — serial, thread pool or the schema-sharded worker pool —
the `ContainmentResult`s must be bit-identical, which
:func:`repro.engine.result_fingerprint` makes checkable as string equality
(every verdict-relevant field including witness graphs, finite
counterexamples and the completed-TBox fingerprint; wall-clock excluded).
"""

import pytest

from repro.analysis import check_equivalence_many, type_check_many
from repro.containment import ContainmentConfig
from repro.engine import (
    ContainmentEngine,
    EngineStats,
    WorkerError,
    merge_stats,
    result_fingerprint,
)
from repro.engine.cache import CacheStats
from repro.engine.parallel import graph_token, plan_routing
from repro.rpq import parse_c2rpq
from repro.workloads import medical
from repro.workloads.batches import containment_batch, synthetic_batch

@pytest.fixture(scope="module")
def shared_process_engine():
    """One 2-worker engine per module: worker spawn is paid once."""
    engine = ContainmentEngine(max_workers=2)
    engine.process_pool().start()
    yield engine
    engine.shutdown()


def fingerprints(results):
    return [result_fingerprint(result) for result in results]


# --------------------------------------------------------------------------- #
# routing
# --------------------------------------------------------------------------- #
def key(schema, secondary="", tertiary=""):
    return (schema, secondary or schema, tertiary or f"{schema}|{secondary}")


def test_plan_routing_is_deterministic_and_single_worker_trivial():
    keys = [key("s1", "a"), key("s2", "b"), key("s1", "c")]
    assert plan_routing(keys, 4) == plan_routing(list(keys), 4)
    assert plan_routing(keys, 1) == [0, 0, 0]
    assert plan_routing([], 4) == []
    with pytest.raises(ValueError):
        plan_routing(keys, 0)


def test_plan_routing_shards_by_schema_when_schemas_abound():
    keys = [key(f"s{i % 5}", f"r{i}") for i in range(20)]
    assignment = plan_routing(keys, 3)
    by_schema = {}
    for (schema, _, _), worker in zip(keys, assignment):
        by_schema.setdefault(schema, set()).add(worker)
    # every schema's requests land on exactly one worker
    assert all(len(workers) == 1 for workers in by_schema.values())


def test_plan_routing_spreads_single_schema_across_all_workers():
    keys = [key("only", f"right{i}") for i in range(64)]
    assignment = plan_routing(keys, 4)
    assert set(assignment) == {0, 1, 2, 3}
    # same right query -> same worker (completion-cache affinity)
    by_right = {}
    for (_, right, _), worker in zip(keys, assignment):
        by_right.setdefault(right, set()).add(worker)
    assert all(len(workers) == 1 for workers in by_right.values())


def test_plan_routing_falls_back_to_request_digest_when_rights_do_not_spread():
    keys = [("only", "same-right", f"request{i}") for i in range(64)]
    assignment = plan_routing(keys, 4)
    assert set(assignment) == {0, 1, 2, 3}


def test_plan_routing_gives_bigger_schemas_wider_ranges():
    keys = [("big", f"r{i}", f"t{i}") for i in range(30)]
    keys += [("small", f"r{i}", f"t{i}") for i in range(2)]
    assignment = plan_routing(keys, 8)
    big_workers = {worker for (schema, _, _), worker in zip(keys, assignment) if schema == "big"}
    small_workers = {worker for (schema, _, _), worker in zip(keys, assignment) if schema == "small"}
    assert not big_workers & small_workers  # contiguous, disjoint ranges
    assert len(big_workers) > len(small_workers)
    assert len(big_workers) + len(small_workers) <= 8


# --------------------------------------------------------------------------- #
# fingerprints and stats merging
# --------------------------------------------------------------------------- #
def test_graph_token_is_stable_and_none_safe():
    schema, pairs = containment_batch("medical")
    engine = ContainmentEngine()
    result = engine.check_many(pairs, schema=schema)[0]
    assert graph_token(None) == "∅"
    if result.witness_pattern is not None:
        assert graph_token(result.witness_pattern) == graph_token(result.witness_pattern.copy())


def test_result_fingerprint_excludes_wall_clock_but_not_verdicts():
    schema, pairs = containment_batch("medical")
    first = ContainmentEngine().check_many(pairs, schema=schema)
    second = ContainmentEngine().check_many(pairs, schema=schema)
    assert fingerprints(first) == fingerprints(second)  # elapsed differs, prints don't
    assert len(set(fingerprints(first))) > 1  # different requests fingerprint apart


def test_merge_stats_sums_counters():
    one = EngineStats(
        results=CacheStats("results", hits=1, misses=2, evictions=0),
        completions=CacheStats("completions", hits=3, misses=1),
        schema_tboxes=CacheStats("schema-tboxes", misses=1),
        automata=CacheStats("automata", hits=5),
        contains_calls=3,
        batches=1,
    )
    two = EngineStats(
        results=CacheStats("results", hits=4, misses=1, evictions=2),
        completions=CacheStats("completions"),
        schema_tboxes=CacheStats("schema-tboxes", hits=2),
        automata=CacheStats("automata", misses=7),
        contains_calls=5,
        batches=2,
    )
    merged = merge_stats([one, two])
    assert (merged.results.hits, merged.results.misses, merged.results.evictions) == (5, 3, 2)
    assert merged.completions.hits == 3 and merged.schema_tboxes.hits == 2
    assert merged.automata.lookups == 12
    assert merged.contains_calls == 8 and merged.batches == 3


# --------------------------------------------------------------------------- #
# backend determinism (the satellite acceptance check)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", ["medical", "fhir", "synthetic"])
def test_backends_are_fingerprint_identical(workload, shared_process_engine):
    schema, pairs = containment_batch(workload, length=4)
    serial = ContainmentEngine().check_many(pairs, schema=schema)
    threaded = ContainmentEngine().check_many(pairs, schema=schema, parallel="thread")
    processed = shared_process_engine.check_many(pairs, schema=schema, parallel="process")
    assert fingerprints(threaded) == fingerprints(serial)
    assert fingerprints(processed) == fingerprints(serial)


def test_process_results_include_witness_patterns_after_pickling(shared_process_engine):
    schema, pairs = synthetic_batch(3)
    serial = ContainmentEngine().check_many(pairs, schema=schema)
    processed = shared_process_engine.check_many(pairs, schema=schema, parallel="process")
    non_contained = [
        (fresh, piped) for fresh, piped in zip(serial, processed) if not fresh.contained
    ]
    assert non_contained, "the synthetic batch must include non-contained instances"
    for fresh, piped in non_contained:
        assert piped.witness_pattern is not None
        assert graph_token(piped.witness_pattern) == graph_token(fresh.witness_pattern)


def test_finite_counterexamples_survive_the_process_boundary(shared_process_engine):
    """Counterexample payloads (graphs + answer tuples) pickle intact."""
    schema = medical.source_schema()
    config = ContainmentConfig(search_finite_counterexample=True)
    pairs = [
        (parse_c2rpq("p(x) := Antigen(x)"), parse_c2rpq("q(x) := Vaccine(x)")),
        (parse_c2rpq("p2(x) := (crossReacting)(x, y)"), parse_c2rpq("q2(x) := Vaccine(x)")),
    ]
    serial = ContainmentEngine().check_many(pairs, schema=schema, config=config)
    processed = shared_process_engine.check_many(
        pairs, schema=schema, config=config, parallel="process"
    )
    assert fingerprints(processed) == fingerprints(serial)
    for fresh, piped in zip(serial, processed):
        assert not piped.contained
        assert piped.finite_counterexample is not None
        assert piped.finite_counterexample.answer == fresh.finite_counterexample.answer
        assert graph_token(piped.finite_counterexample.graph) == graph_token(
            fresh.finite_counterexample.graph
        )


def test_process_batch_warms_the_parent_result_cache(shared_process_engine):
    schema, pairs = containment_batch("social")
    shared_process_engine.check_many(pairs, schema=schema, parallel="process")
    hits_before = shared_process_engine.stats.results.hits
    replayed = shared_process_engine.check_many(pairs, schema=schema)
    assert shared_process_engine.stats.results.hits >= hits_before + len(pairs)
    serial = ContainmentEngine().check_many(pairs, schema=schema)
    assert fingerprints(replayed) == fingerprints(serial)


def test_pool_stats_aggregate_worker_counters(shared_process_engine):
    stats = shared_process_engine.process_stats()
    assert stats is not None
    assert stats.contains_calls > 0
    assert stats.results.lookups >= stats.contains_calls
    as_dict = stats.as_dict()
    assert set(as_dict["caches"]) == {"results", "completions", "schema-tboxes", "automata"}


# --------------------------------------------------------------------------- #
# failure propagation and lifecycle
# --------------------------------------------------------------------------- #
def test_worker_exceptions_surface_as_worker_error(shared_process_engine):
    cyclic_right = parse_c2rpq("q(x) := (r*)(x, x)")  # not acyclic: rejected by the solver
    schema, pairs = containment_batch("medical")
    with pytest.raises(WorkerError) as excinfo:
        shared_process_engine.check_many(
            [(pairs[0][0], cyclic_right)], schema=schema, parallel="process"
        )
    assert "AcyclicityError" in str(excinfo.value)
    assert "AcyclicityError" in excinfo.value.remote_traceback
    # the pool survives a failed task and keeps serving
    results = shared_process_engine.check_many(pairs[:2], schema=schema, parallel="process")
    assert len(results) == 2


def test_unknown_backend_is_rejected():
    schema, pairs = containment_batch("medical")
    with pytest.raises(ValueError):
        ContainmentEngine().check_many(pairs, schema=schema, parallel="fork")


def test_engine_replaces_a_pool_whose_worker_died():
    """A worker killed mid-batch must not poison later batches: the pool
    tears itself down and the engine builds a fresh one transparently."""
    engine = ContainmentEngine(max_workers=1)
    schema, pairs = containment_batch("social")
    try:
        pool = engine.process_pool()
        pool.start()
        pool._processes[0].terminate()  # simulate an OOM-killed worker
        pool._processes[0].join()
        with pytest.raises(WorkerError, match="died without replying"):
            engine.check_many(pairs[:2], schema=schema, parallel="process")
        assert pool.closed
        # the very next process batch runs on a fresh pool with clean queues
        results = engine.check_many(pairs[:2], schema=schema, parallel="process")
        serial = ContainmentEngine().check_many(pairs[:2], schema=schema)
        assert fingerprints(results) == fingerprints(serial)
        assert engine.process_pool() is not pool
    finally:
        engine.shutdown()


def test_tbox_digest_explains_unsupported_access(shared_process_engine):
    schema, pairs = containment_batch("medical")
    result = shared_process_engine.check_many(pairs[:1], schema=schema, parallel="process")[0]
    assert result.completion is not None
    assert len(result.completion.tbox.canonical_fingerprint()) == 64
    assert result.completion.tbox.size() > 0
    with pytest.raises(AttributeError, match="stands in for a completed TBox"):
        result.completion.tbox.statements()


def test_dropped_pool_reaps_its_workers():
    """A pool discarded without close() must not leak worker processes."""
    import gc
    import weakref

    from repro.engine.parallel import WorkerPool

    pool = WorkerPool(workers=1)
    pool.start()
    (process,) = pool._processes
    assert process.is_alive()
    probe = weakref.ref(pool)
    del pool
    gc.collect()
    assert probe() is None  # nothing keeps the abandoned pool alive
    process.join(timeout=10)
    assert not process.is_alive()


def test_shutdown_is_idempotent_and_pool_recreatable():
    engine = ContainmentEngine(max_workers=2)
    schema, pairs = containment_batch("social")
    first = engine.check_many(pairs[:3], schema=schema, parallel="process")
    engine.shutdown()
    engine.shutdown()  # idempotent
    second = engine.check_many(pairs[:3], schema=schema, parallel="process")  # fresh pool
    assert fingerprints(first) == fingerprints(second)
    engine.shutdown()


# --------------------------------------------------------------------------- #
# the analysis batch layer
# --------------------------------------------------------------------------- #
def test_type_check_many_matches_serial_across_backends(shared_process_engine):
    jobs = [
        (medical.migration(), medical.source_schema(), medical.target_schema()),
        (medical.broken_migration(), medical.source_schema(), medical.target_schema()),
        (medical.redundant_migration(), medical.source_schema(), medical.target_schema()),
    ]
    serial = type_check_many(jobs, engine=ContainmentEngine())
    threaded = type_check_many(jobs, parallel="thread", engine=ContainmentEngine())
    processed = type_check_many(jobs, parallel="process", engine=shared_process_engine)
    assert [r.well_typed for r in serial] == [True, False, True]
    for variant in (threaded, processed):
        assert [r.well_typed for r in variant] == [r.well_typed for r in serial]
        assert [r.containment_calls for r in variant] == [r.containment_calls for r in serial]
    # the pickled result still carries the structured failure detail
    assert processed[1].failed_statements()
    assert processed[1].failed_statements()[0].statement is not None


def test_check_equivalence_many_matches_serial(shared_process_engine):
    jobs = [
        (medical.migration(), medical.redundant_migration(), medical.source_schema()),
        (medical.migration(), medical.broken_migration(), medical.source_schema()),
    ]
    serial = check_equivalence_many(jobs, engine=ContainmentEngine())
    processed = check_equivalence_many(jobs, parallel="process", engine=shared_process_engine)
    assert [r.equivalent for r in serial] == [True, False]
    assert [r.equivalent for r in processed] == [r.equivalent for r in serial]
    assert [len(r.differences) for r in processed] == [len(r.differences) for r in serial]


def test_analysis_jobs_validate_their_shape():
    with pytest.raises(TypeError):
        type_check_many([(medical.migration(), medical.source_schema())])
    with pytest.raises(TypeError):
        check_equivalence_many(
            [(medical.migration(), medical.redundant_migration(), "not-a-schema")]
        )


def test_interrupted_batch_shuts_the_pool_down_promptly(monkeypatch):
    """A KeyboardInterrupt mid-batch must not leave spawn children alive
    behind the atexit hook's serial 5-second joins."""
    import time

    from repro.engine.parallel import WorkerPool

    schema, pairs = containment_batch("medical")
    pool = WorkerPool(2)
    pool.start()
    processes = list(pool._processes)
    assert all(process.is_alive() for process in processes)

    def interrupted_receive():
        raise KeyboardInterrupt()

    monkeypatch.setattr(pool, "_receive", interrupted_receive)
    started = time.perf_counter()
    with pytest.raises(KeyboardInterrupt):
        pool.check_many([(left, right, schema, None) for left, right in pairs[:4]])
    elapsed = time.perf_counter() - started

    assert pool.closed
    assert all(not process.is_alive() for process in processes), (
        "interrupted pool left live children"
    )
    # parallel terminate, not one serial 5 s join per worker
    assert elapsed < 5.0, f"interrupt teardown took {elapsed:.1f}s"
