"""Tests for C2RPQs, UC2RPQs, acyclicity and the query parser."""

import pytest

from repro.exceptions import AcyclicityError, ParseError, QueryError
from repro.rpq import (
    Atom,
    C2RPQ,
    UC2RPQ,
    EPSILON,
    edge,
    equality_atom,
    label_atom,
    parse_c2rpq,
    parse_uc2rpq,
)


class TestAtoms:
    def test_trivial_atoms(self):
        assert label_atom("A", "x").is_trivial()
        assert Atom(EPSILON, "x", "x").is_trivial()
        assert not Atom(edge("r"), "x", "x").is_trivial()
        assert not label_atom("A", "x").is_self_loop()
        assert Atom(edge("r"), "x", "x").is_self_loop()

    def test_equality_atom_is_epsilon(self):
        atom = equality_atom("x", "y")
        assert atom.regex == EPSILON and not atom.is_trivial()

    def test_variables(self):
        assert Atom(edge("r"), "x", "y").variables == ("x", "y")
        assert Atom(edge("r"), "x", "x").variables == ("x",)

    def test_reversed(self):
        atom = Atom(edge("r"), "x", "y").reversed()
        assert atom.source == "y" and atom.target == "x"
        assert atom.regex.signed.is_inverse

    def test_rename(self):
        atom = Atom(edge("r"), "x", "y").rename({"x": "z"})
        assert atom.source == "z"

    def test_invalid_variable_rejected(self):
        with pytest.raises(QueryError):
            Atom(edge("r"), "", "y")


class TestC2RPQ:
    def test_free_and_existential_variables(self):
        query = parse_c2rpq("q(x) := (r)(x, y), (s)(y, z)")
        assert query.free_variables == ("x",)
        assert query.existential_variables() == {"y", "z"}
        assert not query.is_boolean()
        assert query.boolean().is_boolean()

    def test_unknown_free_variable_rejected(self):
        with pytest.raises(QueryError):
            C2RPQ([Atom(edge("r"), "x", "y")], ["z"])

    def test_alphabets_and_size(self):
        query = parse_c2rpq("q() := (Vaccine . designTarget)(x, y), Antigen(y)")
        assert query.node_labels() == {"Vaccine", "Antigen"}
        assert query.edge_labels() == {"designTarget"}
        assert query.size() >= 4

    def test_rename_and_fresh_variables(self):
        query = parse_c2rpq("q(x) := (r)(x, y)")
        renamed = query.with_fresh_variables("_1")
        assert renamed.free_variables == ("x_1",)
        assert renamed.variables() == {"x_1", "y_1"}

    def test_conjoin_shares_variables(self):
        left = parse_c2rpq("l(x) := (r)(x, y)")
        right = parse_c2rpq("r(x) := (s)(x, z)")
        conjunction = left.conjoin(right)
        assert conjunction.variables() == {"x", "y", "z"}
        assert len(conjunction.atoms) == 2

    def test_project(self):
        query = parse_c2rpq("q(x, y) := (r)(x, y)")
        assert query.project(["x"]).free_variables == ("x",)

    def test_connected_components(self):
        query = parse_c2rpq("q() := (r)(x, y), (s)(u, v)")
        components = query.connected_components()
        assert len(components) == 2
        assert query.is_connected() is False

    def test_equality_and_hash(self):
        left = parse_c2rpq("q(x) := (r)(x, y)")
        right = parse_c2rpq("p(x) := (r)(x, y)")
        assert left == right
        assert len({left, right}) == 1


class TestAcyclicity:
    def test_single_path_atom_is_acyclic(self):
        assert parse_c2rpq("q() := (r . s*)(x, y)").is_acyclic()

    def test_tree_of_atoms_is_acyclic(self):
        assert parse_c2rpq("q() := (r)(x, y), (s)(x, z), (t)(z, w)").is_acyclic()

    def test_self_loop_atom_is_cyclic(self):
        assert not parse_c2rpq("q() := (r)(x, x)").is_acyclic()

    def test_parallel_atoms_are_cyclic(self):
        # the Gaifman graph would be acyclic, the query multigraph is not
        # (this is the φ(x,y) ∧ ψ(x,y) example from Section 3)
        assert not parse_c2rpq("q() := (r)(x, y), (s)(x, y)").is_acyclic()

    def test_triangle_is_cyclic(self):
        assert not parse_c2rpq("q() := (r)(x, y), (r)(y, z), (r)(z, x)").is_acyclic()

    def test_trivial_atoms_do_not_create_cycles(self):
        assert parse_c2rpq("q() := A(x), B(x), (r)(x, y)").is_acyclic()

    def test_require_acyclic_raises(self):
        with pytest.raises(AcyclicityError):
            parse_c2rpq("q() := (r)(x, x)").require_acyclic()

    def test_figure4_query_is_cyclic(self):
        # Example 6.2: p(x,y) = (a·b·c+·d·a)(x,y) ∧ (a*)(x,y) ∧ (a*·b·d·a*)(x,y)
        query = parse_c2rpq(
            "p(x, y) := (a . b . c+ . d . a)(x, y), (a*)(x, y), (a* . b . d . a*)(x, y)"
        )
        assert not query.is_acyclic()


class TestUC2RPQ:
    def test_union_arity_must_match(self):
        unary = parse_c2rpq("q(x) := A(x)")
        boolean = parse_c2rpq("p() := A(x)")
        with pytest.raises(QueryError):
            UC2RPQ([unary, boolean])

    def test_union_properties(self):
        union = parse_uc2rpq(["q(x) := A(x)", "q2(x) := (r)(x, y)"], name="U")
        assert union.arity() == 1
        assert len(union) == 2
        assert union.node_labels() == {"A"}
        assert union.edge_labels() == {"r"}
        assert union.is_acyclic()

    def test_empty_union(self):
        empty = UC2RPQ([])
        assert empty.is_empty() and empty.is_boolean()

    def test_boolean_and_map(self):
        union = parse_uc2rpq(["q(x) := A(x)"])
        assert union.boolean().is_boolean()
        mapped = union.map(lambda disjunct: disjunct.project([]))
        assert mapped.arity() == 0

    def test_from_query(self):
        query = parse_c2rpq("q(x) := A(x)")
        assert len(UC2RPQ.from_query(query)) == 1


class TestParser:
    def test_head_and_body(self):
        query = parse_c2rpq("q(x, y) := (designTarget . crossReacting*)(x, y), Antigen(y)")
        assert query.free_variables == ("x", "y")
        assert len(query.atoms) == 2

    def test_label_atom_shorthand(self):
        query = parse_c2rpq("q(x) := Vaccine(x)")
        assert query.atoms[0].is_trivial()

    def test_malformed_header_rejected(self):
        with pytest.raises(ParseError):
            parse_c2rpq("q(x) = A(x)")

    def test_malformed_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_c2rpq("q(x) := (r)(x, y, z)")

    def test_nested_parentheses_in_regex(self):
        query = parse_c2rpq("q() := ((a + b)* . c)(x, y)")
        assert query.atoms[0].regex.edge_labels() == {"a", "b", "c"}
