"""The cached containment engine: correctness of every cache, accuracy of the
statistics, and the batch API.

The central invariant: an engine-served result must be indistinguishable (in
every verdict-relevant field) from one computed by a fresh, cache-free
:class:`ContainmentSolver` — whatever mix of schemas, queries and repetition
warmed the caches beforehand.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

import repro
from repro.analysis import check_equivalence, elicit_schema, type_check
from repro.containment import ContainmentConfig, ContainmentSolver, contains
from repro.dl import schema_to_extended_tbox
from repro.engine import (
    CacheStats,
    ContainmentEngine,
    ContainmentRequest,
    LRUCache,
    default_engine,
    reset_default_engine,
)
from repro.rpq import C2RPQ, UC2RPQ, Atom, parse_c2rpq
from repro.rpq.regex import concat, edge, node, star, union
from repro.schema import Schema
from repro.workloads import fhir, medical, synthetic


def verdict(result):
    """Every verdict-relevant field of a containment result."""
    return (
        result.contained,
        result.regime,
        result.schema_name,
        result.left_name,
        result.right_name,
        result.tbox_size,
        result.patterns_checked,
        result.reason,
    )


# --------------------------------------------------------------------------- #
# engine results == fresh solver results
# --------------------------------------------------------------------------- #
def _cases():
    """(schema, left, right) triples across several workloads and shapes."""
    medical_schema = medical.source_schema()
    chain = synthetic.chain_schema(3)
    fhir_schema = fhir.schema_v3()
    example52 = Schema(["A"], ["s", "r"], name="S52")
    example52.set_edge("A", "s", "A", "+", "?")
    example52.set_edge("A", "r", "A", "*", "*")
    cases = [
        (
            medical_schema,
            parse_c2rpq("p(x) := (Vaccine . designTarget . crossReacting*)(x, y)"),
            parse_c2rpq("q(x) := Vaccine(x)"),
        ),
        (
            medical_schema,
            parse_c2rpq("p(x) := Antigen(x)"),
            parse_c2rpq("q(x) := Vaccine(x)"),
        ),
        (
            chain,
            C2RPQ([Atom(concat(edge("e0"), edge("e1"), edge("e2")), "x", "y")], ["x"], name="p"),
            parse_c2rpq("q(x) := L0(x)"),
        ),
        (
            example52,
            parse_c2rpq("p(x) := (s . s)(x, y)"),
            parse_c2rpq("q(x) := (s-)(x, y)"),
        ),
        (
            fhir_schema,
            parse_c2rpq("p(x) := Patient(x)"),
            parse_c2rpq("q(x) := Patient(x)"),
        ),
    ]
    return cases


@pytest.mark.parametrize("index", range(len(_cases())), ids=lambda i: f"case{i}")
def test_engine_matches_fresh_solver(index):
    schema, left, right = _cases()[index]
    fresh = ContainmentSolver(schema).contains(left, right)
    engine = ContainmentEngine()
    cold = engine.contains(left, right, schema)
    warm = engine.contains(left, right, schema)
    assert verdict(cold) == verdict(fresh)
    assert verdict(warm) == verdict(fresh)
    # the completed TBoxes are bit-identical across cached and fresh runs
    for served in (cold, warm):
        assert (
            served.completion.tbox.canonical_fingerprint()
            == fresh.completion.tbox.canonical_fingerprint()
        )


def test_cache_hits_return_independent_witness_graphs():
    """Mutating a served counterexample must not corrupt later cache hits."""
    schema, left, right = _cases()[1]  # a non-contained instance with a witness
    engine = ContainmentEngine()
    first = engine.contains(left, right, schema)
    assert not first.contained and first.witness_pattern is not None
    second = engine.contains(left, right, schema)
    assert second.witness_pattern is not first.witness_pattern
    second.witness_pattern.add_label(next(iter(second.witness_pattern.nodes())), "Tampered")
    third = engine.contains(left, right, schema)
    assert not any("Tampered" in third.witness_pattern.labels(n) for n in third.witness_pattern.nodes())


def test_cache_hit_reports_current_schema_name():
    """The result cache is name-insensitive for schemas, but a served result
    must still carry the calling schema's name."""
    schema, left, right = _cases()[0]
    renamed = schema.copy(name="renamed-twin")
    engine = ContainmentEngine()
    engine.contains(left, right, schema)
    served = engine.contains(left, right, renamed)
    assert engine.stats.results.hits == 1  # same fingerprint, served warm
    assert served.schema_name == "renamed-twin"


def test_engine_matches_fresh_solver_after_mixed_warmup():
    """Interleaving many schemas/queries must not cross-contaminate results."""
    cases = _cases()
    engine = ContainmentEngine()
    for _ in range(2):
        for schema, left, right in cases:
            engine.contains(left, right, schema)
    for schema, left, right in cases:
        fresh = ContainmentSolver(schema).contains(left, right)
        assert verdict(engine.contains(left, right, schema)) == verdict(fresh)


def test_engine_respects_config():
    """Distinct configs key distinct cache entries with distinct outcomes."""
    schema, left, right = _cases()[0]
    loose = ContainmentConfig()
    ablation = ContainmentConfig(apply_completion=False)
    engine = ContainmentEngine()
    for config in (loose, ablation, loose, ablation):
        fresh = ContainmentSolver(schema, config).contains(left, right)
        assert verdict(engine.contains(left, right, schema, config)) == verdict(fresh)


def test_schema_mutation_cannot_serve_stale_results():
    """Mutating a schema between calls changes its fingerprint, so the warm
    engine recomputes instead of replaying the old verdict."""
    schema = Schema(["A", "B"], ["r"], name="S")
    schema.set_edge("A", "r", "B", "*", "*")
    left = parse_c2rpq("p(x) := (r)(x, y)")
    right = parse_c2rpq("q(x) := A(x)")
    engine = ContainmentEngine()
    before = engine.contains(left, right, schema)
    assert verdict(before) == verdict(ContainmentSolver(schema).contains(left, right))
    schema.set_edge("B", "r", "B", "*", "*")  # now B-nodes may also have r-edges
    after = engine.contains(left, right, schema)
    assert verdict(after) == verdict(ContainmentSolver(schema).contains(left, right))
    assert before.contained and not after.contained


# --------------------------------------------------------------------------- #
# property-style: random queries, engine == fresh solver
# --------------------------------------------------------------------------- #
PROPERTY_SCHEMA = Schema(["A", "B"], ["r", "s"], name="prop")
PROPERTY_SCHEMA.set_edge("A", "r", "B", "+", "?")
PROPERTY_SCHEMA.set_edge("B", "s", "A", "*", "*")
PROPERTY_SCHEMA.set_edge("A", "s", "A", "?", "?")

_label = st.sampled_from(["A", "B"])
_edge = st.sampled_from(["r", "s", "r-", "s-"])


@st.composite
def schema_regexes(draw, depth=2):
    """Small regexes over the property schema's alphabet."""
    if depth == 0:
        if draw(st.booleans()):
            return node(draw(_label))
        return edge(draw(_edge))
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return draw(schema_regexes(depth=0))
    if choice == 1:
        return concat(draw(schema_regexes(depth=depth - 1)), draw(schema_regexes(depth=depth - 1)))
    if choice == 2:
        return union(draw(schema_regexes(depth=depth - 1)), draw(schema_regexes(depth=depth - 1)))
    return star(draw(schema_regexes(depth=depth - 1)))


_property_engine = ContainmentEngine()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(regex=schema_regexes(), right_label=_label)
def test_engine_equals_fresh_solver_on_random_queries(regex, right_label):
    left = C2RPQ([Atom(regex, "x", "y")], ["x"], name="p")
    right = C2RPQ([Atom(node(right_label), "x", "x")], ["x"], name="q")
    fresh = ContainmentSolver(PROPERTY_SCHEMA).contains(left, right)
    served = _property_engine.contains(left, right, PROPERTY_SCHEMA)
    assert verdict(served) == verdict(fresh)
    # and a second, certainly-cached call replays the same verdict
    assert verdict(_property_engine.contains(left, right, PROPERTY_SCHEMA)) == verdict(fresh)


# --------------------------------------------------------------------------- #
# cache statistics
# --------------------------------------------------------------------------- #
def test_result_cache_statistics_are_exact():
    schema, left, right = _cases()[0]
    engine = ContainmentEngine()
    assert engine.stats.results.lookups == 0
    engine.contains(left, right, schema)
    engine.contains(left, right, schema)
    engine.contains(left, right, schema)
    stats = engine.stats
    assert stats.contains_calls == 3
    assert stats.results.misses == 1
    assert stats.results.hits == 2
    assert stats.results.lookups == 3
    assert stats.results.hit_rate == pytest.approx(2 / 3)
    assert stats.results.evictions == 0
    # one schema encoding and one completion were built, never rebuilt
    assert stats.schema_tboxes.misses == 1
    assert stats.completions.misses == 1


def test_evictions_are_counted_and_bounded():
    schema = medical.source_schema()
    right = parse_c2rpq("q(x) := Vaccine(x)")
    lefts = [parse_c2rpq(f"p{i}(x) := (crossReacting{'*' * (i % 2)})(x, y)") for i in range(2)]
    lefts += [parse_c2rpq("p2(x) := Vaccine(x)"), parse_c2rpq("p3(x) := Antigen(x)")]
    engine = ContainmentEngine(result_cache_size=2)
    for left in lefts:
        engine.contains(left, right, schema)
    stats = engine.stats
    assert stats.results.misses == len(lefts)
    assert stats.results.evictions == len(lefts) - 2
    assert engine.cache_sizes()["results"] == 2
    # the evicted first instance is recomputed — a miss, not a stale hit
    fresh = ContainmentSolver(schema).contains(lefts[0], right)
    assert verdict(engine.contains(lefts[0], right, schema)) == verdict(fresh)
    assert engine.stats.results.misses == len(lefts) + 1


def test_cache_stats_snapshot_is_independent():
    cache = LRUCache("probe", 4)
    cache.put("k", 1)
    cache.get("k")
    snapshot = cache.stats.snapshot()
    cache.get("missing")
    assert snapshot.misses == 0 and cache.stats.misses == 1
    assert isinstance(snapshot, CacheStats)


def test_clear_and_invalidate_schema():
    schema, left, right = _cases()[0]
    other_schema, other_left, other_right = _cases()[2]
    engine = ContainmentEngine()
    engine.contains(left, right, schema)
    engine.contains(other_left, other_right, other_schema)
    assert engine.cache_sizes()["results"] == 2
    report = engine.invalidate_schema(schema)
    assert report.results == 1
    assert report.schema_fingerprint == schema.canonical_fingerprint()
    with pytest.warns(DeprecationWarning, match="InvalidationReport"):
        assert int(report) == 1  # legacy bare-int view of the report
    assert engine.cache_sizes()["results"] == 1
    engine.clear()
    assert all(count == 0 for count in engine.cache_sizes().values())
    # counters survive clearing; correctness is unaffected
    fresh = ContainmentSolver(schema).contains(left, right)
    assert verdict(engine.contains(left, right, schema)) == verdict(fresh)


# --------------------------------------------------------------------------- #
# the batch API
# --------------------------------------------------------------------------- #
def _batch_and_schema():
    schema = medical.source_schema()
    rights = [parse_c2rpq("q(x) := Vaccine(x)"), parse_c2rpq("q2(x) := Antigen(x)")]
    lefts = [
        parse_c2rpq("p0(x) := (Vaccine . designTarget)(x, y)"),
        parse_c2rpq("p1(x) := (designTarget . crossReacting*)(x, y)"),
        parse_c2rpq("p2(x) := Antigen(x)"),
    ]
    return schema, [(left, right) for left in lefts for right in rights]


def test_check_many_preserves_order_and_matches_sequential():
    schema, batch = _batch_and_schema()
    baseline = [ContainmentSolver(schema).contains(left, right) for left, right in batch]
    engine = ContainmentEngine()
    results = engine.check_many(batch, schema=schema)
    assert [verdict(r) for r in results] == [verdict(r) for r in baseline]
    assert engine.stats.batches == 1


def test_check_many_parallel_matches_sequential():
    schema, batch = _batch_and_schema()
    sequential = ContainmentEngine().check_many(batch, schema=schema)
    parallel = ContainmentEngine().check_many(batch, schema=schema, parallel=True, max_workers=4)
    assert [verdict(r) for r in parallel] == [verdict(r) for r in sequential]
    # and on a warm engine too
    engine = ContainmentEngine()
    engine.check_many(batch, schema=schema)
    warm_parallel = engine.check_many(batch, schema=schema, parallel=True)
    assert [verdict(r) for r in warm_parallel] == [verdict(r) for r in sequential]


def test_check_many_accepts_requests_and_mixed_schemas():
    medical_schema = medical.source_schema()
    chain = synthetic.chain_schema(2)
    requests = [
        ContainmentRequest(
            parse_c2rpq("p(x) := Vaccine(x)"), parse_c2rpq("q(x) := Vaccine(x)"), medical_schema
        ),
        (
            C2RPQ([Atom(concat(edge("e0"), edge("e1")), "x", "y")], ["x"], name="p"),
            parse_c2rpq("q(x) := L0(x)"),
            chain,
        ),
    ]
    results = ContainmentEngine().check_many(requests)
    assert [r.schema_name for r in results] == [medical_schema.name, chain.name]
    assert all(r.contained for r in results)


def test_check_many_requires_a_schema():
    with pytest.raises(TypeError):
        ContainmentEngine().check_many(
            [(parse_c2rpq("p(x) := A(x)"), parse_c2rpq("q(x) := A(x)"))]
        )
    with pytest.raises(TypeError):
        ContainmentEngine().check_many([("only-one-element",)], schema=medical.source_schema())


# --------------------------------------------------------------------------- #
# the stateless wrapper and the default engine
# --------------------------------------------------------------------------- #
def test_module_level_contains_routes_through_default_engine():
    reset_default_engine()
    try:
        schema, left, right = _cases()[0]
        fresh = ContainmentSolver(schema).contains(left, right)
        first = contains(left, right, schema)
        second = contains(left, right, schema)
        assert verdict(first) == verdict(second) == verdict(fresh)
        stats = default_engine().stats
        assert stats.contains_calls == 2
        assert stats.results.hits == 1
        assert repro.default_engine() is default_engine()
    finally:
        reset_default_engine()


# --------------------------------------------------------------------------- #
# the analysis layer on a shared engine
# --------------------------------------------------------------------------- #
def test_type_check_identical_with_and_without_engine():
    source, target = medical.source_schema(), medical.target_schema()
    migration = medical.migration()
    engine = ContainmentEngine()
    cold = type_check(migration, source, target, engine=engine)
    warm = type_check(migration, source, target, engine=engine)
    plain = type_check(migration, source, target)
    assert cold.well_typed == warm.well_typed == plain.well_typed
    assert cold.containment_calls == warm.containment_calls == plain.containment_calls
    assert engine.stats.results.hits >= warm.containment_calls


def test_equivalence_and_elicitation_accept_engine():
    source = medical.source_schema()
    engine = ContainmentEngine()
    equivalence = check_equivalence(
        medical.migration(), medical.redundant_migration(), source, engine=engine
    )
    assert equivalence.equivalent
    elicited_warm = elicit_schema(medical.migration(), source, engine=engine)
    elicited_plain = elicit_schema(medical.migration(), source)
    assert elicited_warm.schema == elicited_plain.schema
    assert engine.stats.results.lookups > 0


# --------------------------------------------------------------------------- #
# canonical fingerprints (the cache-key material)
# --------------------------------------------------------------------------- #
def test_schema_fingerprint_is_semantic():
    schema = Schema(["A", "B"], ["r"], name="S")
    schema.set_edge("A", "r", "B", "+", "?")
    renamed = schema.copy(name="entirely-different")
    assert schema.canonical_fingerprint() == renamed.canonical_fingerprint()
    with_explicit_zero = schema.copy()
    with_explicit_zero.set("A", "r", "A", "0")  # semantically a no-op
    assert schema.canonical_fingerprint() == with_explicit_zero.canonical_fingerprint()
    mutated = schema.copy()
    mutated.set("A", "r", "A", "*")
    assert schema.canonical_fingerprint() != mutated.canonical_fingerprint()


def test_query_fingerprint_ignores_names_and_disjunct_order():
    one = parse_c2rpq("p(x) := (A . r)(x, y)")
    two = parse_c2rpq("other(x) := (A . r)(x, y)")
    assert one.canonical_fingerprint() == two.canonical_fingerprint()
    other_var = parse_c2rpq("p(x) := (A . r)(x, z)")
    assert one.canonical_fingerprint() != other_var.canonical_fingerprint()
    union_one = UC2RPQ([one, other_var], name="U")
    union_two = UC2RPQ([other_var, two], name="V")
    assert union_one.canonical_fingerprint() == union_two.canonical_fingerprint()


def test_schema_fingerprint_injective_on_adversarial_labels():
    """Labels containing the serialisation's own delimiters must not let two
    different schemas collide (every variable-width field is length-prefixed)."""
    tricky_edge = "p|1:B|*;1:A|q"
    one = Schema(["A", "B"], ["p", "q", tricky_edge], name="S1")
    one.set("A", tricky_edge, "B", "*")
    two = Schema(["A", "B"], ["p", "q", tricky_edge], name="S2")
    two.set("A", "p", "B", "*")
    two.set("A", "q", "B", "*")
    assert one.canonical_fingerprint() != two.canonical_fingerprint()


def test_tbox_fingerprint_ignores_statement_order():
    schema = medical.source_schema()
    tbox = schema_to_extended_tbox(schema)
    reversed_tbox = type(tbox)(reversed(tbox.statements()), name="reversed")
    assert tbox.canonical_fingerprint() == reversed_tbox.canonical_fingerprint()
    smaller = type(tbox)(tbox.statements()[:-1], name="smaller")
    assert tbox.canonical_fingerprint() != smaller.canonical_fingerprint()


def test_automata_cache_is_keyed_by_schema_context():
    """One engine serving two schemas must not share pinned symbol tables."""
    engine = ContainmentEngine()
    schema_a = medical.source_schema()
    schema_b = medical.target_schema()
    regex = parse_c2rpq("p(x) := (a*)(x, y)").atoms[0].regex
    bundle_a = engine.solver(schema_a)._compile_automaton(regex)
    bundle_b = engine.solver(schema_b)._compile_automaton(regex)
    assert bundle_a.context == schema_a.canonical_fingerprint()
    assert bundle_b.context == schema_b.canonical_fingerprint()
    assert bundle_a is not bundle_b
    # but within one schema the bundle is shared (cache hit)
    assert engine.solver(schema_a)._compile_automaton(regex) is bundle_a


def test_compile_automaton_override_substitutes_bundles():
    """Subclasses substitute automata by overriding _compile_automaton."""
    from repro.core import compile_regex

    compiled = []

    class CountingSolver(ContainmentSolver):
        def _compile_automaton(self, regex):
            if self._intern_context is None:
                self._intern_context = self.schema.canonical_fingerprint()
            bundle = compile_regex(regex, self._intern_context)
            compiled.append(bundle)
            return bundle

    solver = CountingSolver(medical.source_schema())
    result = solver.contains(
        parse_c2rpq("p(x) := (designTarget)(x, y)"), parse_c2rpq("q(x) := Vaccine(x)")
    )
    assert result.contained
    assert compiled  # the pipeline routed through the override


# --------------------------------------------------------------------------- #
# lifecycle: context manager, idempotent close, use-after-close
# --------------------------------------------------------------------------- #
def test_engine_context_manager_closes_and_rejects_use_after_close(tmp_path):
    schema = medical.source_schema()
    left = parse_c2rpq("p(x) := (designTarget)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")

    with ContainmentEngine(persist=tmp_path / "store.db") as engine:
        assert engine.contains(left, right, schema).contained
        assert not engine.closed
    assert engine.closed
    assert engine.store.disabled  # the store went down with the engine

    engine.close()  # double close is a documented no-op, not an error

    # use-after-close names the mistake instead of limping along on a dead
    # store (or surfacing as sqlite3.ProgrammingError from a write-back)
    with pytest.raises(RuntimeError, match="has been closed"):
        engine.contains(left, right, schema)
    with pytest.raises(RuntimeError, match="has been closed"):
        engine.check_many([(left, right)], schema=schema)
    with pytest.raises(RuntimeError, match="has been closed"):
        engine.solver(schema)
    with pytest.raises(RuntimeError, match="has been closed"):
        engine.process_pool()

    # statistics stay readable for post-mortem reports
    assert engine.stats.contains_calls == 1
    assert engine.stats.store is not None


def test_engine_context_manager_closes_on_exceptions():
    engine = ContainmentEngine()
    with pytest.raises(ValueError, match="boom"):
        with engine:
            raise ValueError("boom")
    assert engine.closed


def test_entering_a_closed_engine_raises():
    engine = ContainmentEngine()
    engine.close()
    with pytest.raises(RuntimeError, match="has been closed"):
        with engine:
            pass  # pragma: no cover - the enter must already have raised
