"""Differential correctness over the workload zoo.

Every prior PR asserted "fingerprints verified identical across backends"
as a manual ritual — one bench run, eyeballed.  This layer makes the claim
an enforced, seeded, reproducible test: one fixed-seed corpus of 200+
generated (schema, query) pairs plus the adversarial families, decided on
every execution backend (serial / thread / process) crossed with the
persistence axis (no store / cold store / warm store), asserting
bit-identical verdicts **and** ``result_fingerprint``s against the serial
no-store baseline.

The fingerprint is the strong form of the check: it digests every
verdict-relevant field of a :class:`ContainmentResult` (containment bit,
regime, names, pattern counts, TBox fingerprint — everything except wall
time), so a backend that got the right boolean by a different computation
still fails here.
"""

import pytest

from repro.engine import ContainmentEngine, result_fingerprint
from repro.workloads.zoo import ZOO_SEED, property_corpus, zoo_corpus

BACKENDS = ("serial", "thread", "process")

#: ≥200 generated pairs, the acceptance floor for this layer.
SCHEMAS = 10
QUERIES_PER_SCHEMA = 20


@pytest.fixture(scope="module")
def corpus():
    pairs = property_corpus(ZOO_SEED, schemas=SCHEMAS, queries_per_schema=QUERIES_PER_SCHEMA)
    assert len(pairs) >= 200
    return pairs


@pytest.fixture(scope="module")
def baseline(corpus):
    """The serial, store-less ground truth: (verdicts, fingerprints)."""
    with ContainmentEngine() as engine:
        results = engine.check_many(corpus)
    return (
        [result.contained for result in results],
        [result_fingerprint(result) for result in results],
    )


def run_corpus(corpus, backend, persist=None):
    with ContainmentEngine(persist=persist) as engine:
        results = engine.check_many(corpus, parallel=backend)
    return (
        [result.contained for result in results],
        [result_fingerprint(result) for result in results],
    )


def test_corpus_is_seeded_and_distinct(corpus):
    """Same seed, same corpus — and the pairs do not collapse to one key."""
    again = property_corpus(ZOO_SEED, schemas=SCHEMAS, queries_per_schema=QUERIES_PER_SCHEMA)
    assert [
        (str(left), str(right), schema.canonical_fingerprint())
        for left, right, schema in corpus
    ] == [
        (str(left), str(right), schema.canonical_fingerprint())
        for left, right, schema in again
    ]
    keys = {
        (left.canonical_token(), right.canonical_token(), schema.canonical_fingerprint())
        for left, right, schema in corpus
    }
    # the regex space is small enough that a few pairs collide by chance;
    # what matters is that the corpus doesn't collapse to a handful of keys
    assert len(keys) >= 0.8 * len(corpus)


def test_baseline_has_both_verdicts(baseline):
    """A generator whose corpus is all-contained (or none) tests nothing."""
    verdicts, _ = baseline
    assert any(verdicts) and not all(verdicts)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_baseline_without_store(corpus, baseline, backend):
    assert run_corpus(corpus, backend) == baseline


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_baseline_with_cold_store(corpus, baseline, backend, tmp_path):
    store = tmp_path / f"zoo-{backend}.db"
    assert run_corpus(corpus, backend, persist=store) == baseline


def test_warm_store_replay_matches_baseline(corpus, baseline, tmp_path):
    """A second engine over the populated store must replay bit-identically.

    Warm verdicts come off disk, not the solver — the round-trip through
    the store's serialisation is exactly where a fingerprint could silently
    drift, so the warm pass asserts both the fingerprints and that the
    store actually served hits (a silently disabled store would "pass" by
    re-solving).
    """
    store = tmp_path / "zoo-warm.db"
    cold = run_corpus(corpus, "serial", persist=store)
    assert cold == baseline
    with ContainmentEngine(persist=store) as engine:
        results = engine.check_many(corpus)
        hits = engine.store.stats.as_dict()["hits"]
    warm = (
        [result.contained for result in results],
        [result_fingerprint(result) for result in results],
    )
    assert warm == baseline
    assert hits == len(corpus)


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_adversarial_families_match_serial(backend):
    """The hardness-derived suites agree across backends too.

    The tree-device and ATM-fragment pairs exercise regex shapes (nesting
    macros, wide signed-label unions under stars) the property generator
    rarely hits; a backend divergence localised to those shapes would slip
    past the property corpus.
    """
    families = zoo_corpus(families=("tree-device", "atm-fragments"))
    requests = [pair for family in families.values() for pair in family]
    serial = run_corpus(requests, "serial")
    assert run_corpus(requests, backend) == serial
