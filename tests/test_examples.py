"""Every example script must run end to end without errors."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert any(script.name == "quickstart.py" for script in EXAMPLE_SCRIPTS)
