"""Tests for the rolling-up construction (Lemma C.2).

The key property under test: a finite graph (not using the fresh concept
names) satisfies T_¬Q — i.e. the chase accepts it as a pattern — iff it does
not satisfy Q.  The chase engine plays the role of the "exists a valuation of
the fresh concepts" check, because the fresh part of T_¬Q is Horn and its
minimal valuation is exactly what the chase computes.
"""

import pytest

from repro.chase import ChaseEngine
from repro.containment import roll_up
from repro.containment.rolling_up import roll_up_choices
from repro.exceptions import AcyclicityError, QueryError
from repro.graph import GraphBuilder
from repro.graph.generators import cycle_graph, path_graph
from repro.rpq import parse_uc2rpq, satisfies
from repro.workloads import medical


def graph_satisfies_tbox(graph, tbox):
    """Is there a valuation of the fresh concepts making the graph a model?"""
    return ChaseEngine(tbox).check_pattern(graph).consistent


def assert_rolling_up_correct(query_texts, graph):
    """T_¬Q is satisfied by the graph iff the graph does not satisfy Q."""
    union = parse_uc2rpq(query_texts).boolean()
    rolled = roll_up(union)
    assert graph_satisfies_tbox(graph, rolled.tbox) == (not satisfies(graph, union))


class TestConstruction:
    def test_requires_boolean_query(self):
        with pytest.raises(QueryError):
            roll_up(parse_uc2rpq(["q(x) := A(x)"]))

    def test_requires_acyclic_query(self):
        with pytest.raises(AcyclicityError):
            roll_up(parse_uc2rpq(["q() := (r)(x, x)"]))

    def test_polynomial_size(self):
        union = parse_uc2rpq(["q() := (a . b* . c)(x, y), A(z, y), (a-)(y, w)"]).boolean()
        rolled = roll_up(union)
        assert rolled.tbox.size() <= 30 * union.size()
        assert rolled.fresh_concepts

    def test_fresh_names_are_marked(self):
        rolled = roll_up(parse_uc2rpq(["q() := (a)(x, y)"]))
        assert all(name.startswith("Q") for name in rolled.fresh_concepts)

    def test_tbox_is_horn(self):
        rolled = roll_up(parse_uc2rpq(["q() := (a . b*)(x, y), B(y)"]))
        assert rolled.tbox.is_horn()


class TestSemantics:
    def test_example_c1_query(self):
        # Q0 = ∃x0..x3. (a·b*·c)(x2,x1) ∧ A(x3,x1) ∧ (a⁻)(x1,x0)
        texts = ["q() := (a . b* . c)(x2, x1), (A)(x3, x1), (a-)(x1, x0)"]
        match = (
            GraphBuilder()
            .node("n1", "A")
            .edge("n2", "a", "m").edge("m", "b", "m2").edge("m2", "c", "n1")
            .edge("n0", "a", "n1")
            .build()
        )
        no_match = (
            GraphBuilder()
            .node("n1", "A")
            .edge("n2", "a", "m").edge("m", "b", "m2").edge("m2", "c", "n1")
            .build()  # no incoming a-edge witness for x0
        )
        assert_rolling_up_correct(texts, match)
        assert_rolling_up_correct(texts, no_match)

    def test_single_edge_query(self):
        texts = ["q() := (r)(x, y)"]
        assert_rolling_up_correct(texts, GraphBuilder().edge("a", "r", "b").build())
        assert_rolling_up_correct(texts, GraphBuilder().edge("a", "s", "b").build())

    def test_star_query_on_paths(self):
        texts = ["q() := (r . r . r)(x, y)"]
        assert_rolling_up_correct(texts, path_graph(2, "A", "r"))
        assert_rolling_up_correct(texts, path_graph(3, "A", "r"))
        assert_rolling_up_correct(texts, cycle_graph(2, "A", "r"))

    def test_inverse_edges(self):
        texts = ["q() := (r- . s)(x, y)"]
        graph = GraphBuilder().edge("b", "r", "a").edge("b", "s", "c").build()
        assert satisfies(graph, parse_uc2rpq(texts))
        assert_rolling_up_correct(texts, graph)

    def test_label_atoms(self):
        texts = ["q() := Vaccine(x), (designTarget)(x, y), Antigen(y)"]
        assert_rolling_up_correct(texts, medical.sample_graph())
        assert_rolling_up_correct(texts, GraphBuilder().node("x", "Vaccine").build())

    def test_union_of_queries(self):
        texts = ["q() := (r)(x, y)", "q() := (s)(x, y)"]
        assert_rolling_up_correct(texts, GraphBuilder().edge("a", "s", "b").build())
        assert_rolling_up_correct(texts, GraphBuilder().edge("a", "t", "b").build())

    def test_disconnected_query_needs_choices(self):
        # ¬(C1 ∧ C2) is a disjunction: the graph must satisfy at least one of
        # the per-choice TBoxes, not their union (see roll_up_choices)
        texts = ["q() := (r)(x, y), (s)(u, v)"]
        union = parse_uc2rpq(texts).boolean()
        choices = roll_up_choices(union)
        assert len(choices) == 2
        both = GraphBuilder().edge("a", "r", "b").edge("c", "s", "d").build()
        only_one = GraphBuilder().edge("a", "r", "b").build()
        assert not any(graph_satisfies_tbox(both, choice.tbox) for choice in choices)
        assert any(graph_satisfies_tbox(only_one, choice.tbox) for choice in choices)

    def test_connected_disjuncts_have_single_choice(self):
        union = parse_uc2rpq(["q() := (r)(x, y)", "q() := (s . t)(x, y)"]).boolean()
        assert len(roll_up_choices(union)) == 1

    def test_medical_example_queries(self):
        graph = medical.sample_graph()
        texts = ["q() := (Vaccine . designTarget . crossReacting* . Antigen)(x, y)"]
        assert_rolling_up_correct(texts, graph)
        texts_neg = ["q() := (exhibits)(x, y), (crossReacting)(y, z), (crossReacting)(z, w)"]
        assert_rolling_up_correct(texts_neg, graph)

    def test_epsilon_equality_atom(self):
        texts = ["q() := (r)(x, y), (<eps>)(y, z), (s)(z, w)"]
        chained = GraphBuilder().edge("a", "r", "b").edge("b", "s", "c").build()
        broken = GraphBuilder().edge("a", "r", "b").edge("d", "s", "c").build()
        assert_rolling_up_correct(texts, chained)
        assert_rolling_up_correct(texts, broken)

    def test_empty_language_atom_never_matches(self):
        union = parse_uc2rpq(["q() := (<empty>)(x, y)"]).boolean()
        rolled = roll_up(union)
        # ¬Q holds unconditionally, so the TBox imposes nothing
        assert graph_satisfies_tbox(GraphBuilder().edge("a", "r", "b").build(), rolled.tbox)

    def test_random_medical_instances(self):
        texts = [
            "q() := (designTarget . crossReacting)(x, y)",
            "q() := (exhibits- . exhibits)(x, y), (crossReacting)(y, z)",
        ]
        for seed in range(4):
            assert_rolling_up_correct(texts, medical.random_instance(seed=seed))
