"""The cheap worker transport: tokens, catalogs, context seeds, shared memory.

Unit tests exercise the wire pieces of ``repro.engine.transport`` directly;
the pool-level tests then force the interesting degradations — catalog
misses falling back to full payloads, schema references resolved from the
read-only store, ``REPRO_NO_SHM=1`` pushing seeds through the queue — and
assert the invariant that makes all of it safe: verdicts stay bit-identical
to serial, and no shared-memory segment outlives its pool on any teardown
path.
"""

import pytest

from repro.containment.solver import _as_union
from repro.core import compile_regex
from repro.core.interning import symbol_table
from repro.engine import ContainmentEngine, TransportStats, WorkerTransportStats, result_fingerprint
from repro.engine.transport import (
    SHM_DISABLE_VARIABLE,
    TokenCatalog,
    build_context_seed,
    decode_payload,
    encode_payload,
    install_context_seed,
    live_seed_segments,
    load_seed,
    publish_seed,
    query_token,
    schema_token,
    shared_memory_disabled,
)
from repro.rpq import parse_regex
from repro.workloads.batches import containment_batch


def fingerprints(results):
    return [result_fingerprint(result) for result in results]


def contain_tokens(left, right, schema):
    """The (left, right, schema) wire tokens exactly as check_many builds them."""
    left, right = _as_union(left, "P"), _as_union(right, "Q")
    return (
        query_token(left.name, left.canonical_token()),
        query_token(right.name, right.canonical_token()),
        schema_token(schema.name, schema.canonical_fingerprint()),
    )


# --------------------------------------------------------------------------- #
# the token catalog
# --------------------------------------------------------------------------- #
def test_catalog_registers_resolves_and_evicts_lru():
    catalog = TokenCatalog(maxsize=2)
    catalog.register("a", 1)
    catalog.register("b", 2)
    assert catalog.resolve("a") == 1  # touches "a": "b" is now the LRU entry
    catalog.register("c", 3)
    assert "b" not in catalog and len(catalog) == 2
    assert catalog.resolve("b") is None
    assert catalog.resolve("a") == 1 and catalog.resolve("c") == 3


def test_catalog_rejects_a_nonpositive_bound():
    with pytest.raises(ValueError):
        TokenCatalog(maxsize=0)


# --------------------------------------------------------------------------- #
# encode / decode
# --------------------------------------------------------------------------- #
def test_first_send_ships_values_repeats_ship_references():
    schema, pairs = containment_batch("medical")
    payload = (*pairs[0], schema, None)
    tokens = contain_tokens(pairs[0][0], pairs[0][1], schema)
    seen, stats = set(), TransportStats()

    first = encode_payload(payload, tokens, seen, stats)
    assert [slot[0] for slot in first[:3]] == ["v", "v", "v"]
    second = encode_payload(payload, tokens, seen, stats)
    assert [slot[0] for slot in second[:3]] == ["r", "r", "r"]
    assert (stats.values_sent, stats.references_sent, stats.items) == (3, 3, 2)

    catalog, worker_stats = TokenCatalog(), WorkerTransportStats()
    decoded_first, missing = decode_payload(first, catalog, None, worker_stats)
    assert missing == [] and decoded_first[2] is schema
    decoded_second, missing = decode_payload(second, catalog, None, worker_stats)
    assert missing == [] and decoded_second[:3] == decoded_first[:3]
    assert worker_stats.values_registered == 3 and worker_stats.catalog_hits == 3


def test_force_values_resends_everything_and_reregisters():
    schema, pairs = containment_batch("medical")
    payload = (*pairs[0], schema, None)
    tokens = contain_tokens(pairs[0][0], pairs[0][1], schema)
    seen, stats = set(tokens), TransportStats()  # ledger says "already sent"
    encoded = encode_payload(payload, tokens, seen, stats, force_values=True)
    assert [slot[0] for slot in encoded[:3]] == ["v", "v", "v"]


def test_unresolvable_references_report_their_tokens():
    schema, pairs = containment_batch("medical")
    tokens = contain_tokens(pairs[0][0], pairs[0][1], schema)
    encoded = (("r", tokens[0]), ("r", tokens[1]), ("r", tokens[2]), None)
    worker_stats = WorkerTransportStats()
    payload, missing = decode_payload(encoded, TokenCatalog(), None, worker_stats)
    assert payload is None
    assert sorted(missing) == sorted(tokens)
    assert worker_stats.misses == 3


class SchemaShelf:
    """A minimal stand-in for the store's ``get("schemas", fingerprint)``."""

    def __init__(self, **by_fingerprint):
        self.by_fingerprint = by_fingerprint

    def get(self, tier, key):
        assert tier == "schemas"
        return self.by_fingerprint.get(key)


def test_schema_references_resolve_from_the_store_only_on_name_match():
    schema, _ = containment_batch("medical")
    fingerprint = schema.canonical_fingerprint()
    token = schema_token(schema.name, fingerprint)
    encoded = (("v", "q:left", 1), ("v", "q:right", 2), ("r", token), None)

    hit_stats = WorkerTransportStats()
    payload, missing = decode_payload(
        encoded, TokenCatalog(), SchemaShelf(**{fingerprint: schema}), hit_stats
    )
    assert missing == [] and payload[2] is schema
    assert hit_stats.store_hits == 1

    # same fingerprint under a different name must NOT resolve: the worker's
    # results would carry the wrong schema_name and change fingerprints
    renamed_token = schema_token("renamed", fingerprint)
    encoded = (("v", "q:left", 1), ("v", "q:right", 2), ("r", renamed_token), None)
    miss_stats = WorkerTransportStats()
    payload, missing = decode_payload(
        encoded, TokenCatalog(), SchemaShelf(**{fingerprint: schema}), miss_stats
    )
    assert payload is None and missing == [renamed_token]
    assert miss_stats.store_hits == 0 and miss_stats.misses == 1


# --------------------------------------------------------------------------- #
# context seeds
# --------------------------------------------------------------------------- #
def warm_bundle(spec, context):
    bundle = compile_regex(parse_regex(spec), context)
    bundle.dfa()
    bundle.minimal_dfa()
    return bundle


def test_seed_ships_only_computed_dfas():
    cold = compile_regex(parse_regex("a . b"), "test-seed-cold")
    assert build_context_seed([cold]) == {}  # nothing computed, nothing shipped
    assert build_context_seed([warm_bundle("a . b*", None)]) == {}  # no context

    warm = warm_bundle("a . (b + c)*", "test-seed-warm")
    seed = build_context_seed([warm, cold])
    assert set(seed) == {"test-seed-warm"}
    assert seed["test-seed-warm"]["symbols"] == symbol_table("test-seed-warm").snapshot()
    ((regex, dfa_spec, min_spec),) = seed["test-seed-warm"]["automata"]
    assert regex == warm.regex and dfa_spec is not None and min_spec is not None
    assert build_context_seed([warm], contexts={"other"}) == {}


def test_install_reconstructs_the_same_dfas_in_a_fresh_context():
    from repro.engine.transport import _dfa_spec

    warm = warm_bundle("a . (b + c)* . d", "test-install-source")
    seed = build_context_seed([warm])
    # re-key the seed onto a context this process has never touched — the
    # same situation a freshly spawned worker is in
    transplanted = {"test-install-target": seed["test-install-source"]}
    stats = WorkerTransportStats()
    assert install_context_seed(transplanted, stats) == 2
    assert stats.automata_seeded == 2 and stats.contexts_skipped == 0
    # the installed DFAs are structurally identical to what a cold local
    # compile would have produced (determinize/minimize are deterministic
    # and symbols intern in the same arrival order)
    installed = compile_regex(warm.regex, "test-install-target")
    recompiled = warm_bundle("a . (b + c)* . d", "test-install-control")
    assert _dfa_spec(installed._dfa) == _dfa_spec(recompiled._dfa)
    assert _dfa_spec(installed._min_dfa) == _dfa_spec(recompiled._min_dfa)
    # a second install is a no-op: computed DFAs are never overwritten
    assert install_context_seed(transplanted, stats) == 0


def test_install_skips_contexts_whose_symbol_prefix_mismatches():
    warm = warm_bundle("a . b", "test-skew-source")
    seed = build_context_seed([warm])
    symbols = seed["test-skew-source"]["symbols"]
    assert len(symbols) >= 2
    # the target table interned the seed's symbols in a different arrival
    # order, so the shipped positional transition ids would be misread
    symbol_table("test-skew-target").intern(symbols[-1])
    transplanted = {"test-skew-target": seed["test-skew-source"]}
    stats = WorkerTransportStats()
    assert install_context_seed(transplanted, stats) == 0
    assert stats.contexts_skipped == 1 and stats.automata_seeded == 0
    # the skipped worker recompiles locally and stays language-identical
    local = warm_bundle("a . b", "test-skew-target")
    control = warm_bundle("a . b", "test-skew-control")
    assert local.minimal_dfa().num_states == control.minimal_dfa().num_states
    assert local._min_dfa is not None


# --------------------------------------------------------------------------- #
# shared-memory publication
# --------------------------------------------------------------------------- #
def test_shm_disable_variable_parsing(monkeypatch):
    for value, disabled in (("", False), ("0", False), ("1", True), ("yes", True)):
        monkeypatch.setenv(SHM_DISABLE_VARIABLE, value)
        assert shared_memory_disabled() is disabled
    monkeypatch.delenv(SHM_DISABLE_VARIABLE)
    assert shared_memory_disabled() is False


def test_publish_and_load_roundtrip_through_shared_memory():
    seed = build_context_seed([warm_bundle("a . b*", "test-shm-roundtrip")])
    stats = TransportStats()
    wire, segment = publish_seed(seed, stats)
    if segment is None:  # pragma: no cover - no /dev/shm in this container
        pytest.skip("shared memory unavailable")
    try:
        assert wire[0] == "shm" and stats.shm_segments == 1
        assert segment.name in live_seed_segments()
        assert load_seed(wire) == seed
        assert load_seed(wire) == seed  # attaching is repeatable
    finally:
        segment.release()
        segment.release()  # idempotent
    assert segment.name not in live_seed_segments()


def test_publish_falls_back_to_pickle_when_disabled(monkeypatch):
    monkeypatch.setenv(SHM_DISABLE_VARIABLE, "1")
    seed = build_context_seed([warm_bundle("a+", "test-pickle-fallback")])
    stats = TransportStats()
    wire, segment = publish_seed(seed, stats)
    assert wire[0] == "pickle" and segment is None
    assert stats.seeds_published == 1 and stats.shm_segments == 0
    assert load_seed(wire) == seed


def test_dense_seed_payload_is_smaller_than_the_legacy_triples(monkeypatch):
    monkeypatch.setenv(SHM_DISABLE_VARIABLE, "1")
    seed = build_context_seed(
        [warm_bundle("(a + b + c)* . d . (a + b)*", "test-seed-size")]
    )
    stats = TransportStats()
    publish_seed(seed, stats)
    # the dense byte-table encoding must undercut the per-transition triple
    # lists it replaced; both sizes are reported so the shrink stays visible
    assert 0 < stats.seed_bytes < stats.seed_bytes_legacy


# --------------------------------------------------------------------------- #
# the pool under degraded transport
# --------------------------------------------------------------------------- #
def poison_ledgers(pool, schema, pairs, queries=True):
    """Mark tokens as already-sent so the pool ships unresolvable references."""
    for left, right in pairs:
        left_token, right_token, token = contain_tokens(left, right, schema)
        for ledger in pool._seen_tokens:
            ledger.add(token)
            if queries:
                ledger.update((left_token, right_token))


def test_catalog_misses_fall_back_to_full_payloads():
    schema, pairs = containment_batch("medical")
    serial = ContainmentEngine().check_many(pairs[:3], schema=schema)
    engine = ContainmentEngine(max_workers=1)
    try:
        pool = engine.process_pool()
        pool.start()
        poison_ledgers(pool, schema, pairs[:3])
        results = engine.check_many(pairs[:3], schema=schema, parallel="process")
        assert fingerprints(results) == fingerprints(serial)
        assert pool.transport_stats.fallback_items >= 1
        assert pool.worker_transport().misses >= 1
        # the fallback re-registered everything: a replay is pure references
        references_before = pool.transport_stats.references_sent
        replay = engine.check_many(pairs[:3], schema=schema, parallel="process")
        assert fingerprints(replay) == fingerprints(serial)
        assert pool.transport_stats.references_sent > references_before
        assert pool.transport_stats.fallback_items == 3  # no new fallbacks
    finally:
        engine.shutdown()


def test_schema_references_resolve_from_the_shared_store(tmp_path):
    """A worker that never received the schema object finds it in the store's
    ``"schemas"`` tier — no miss round-trip, bit-identical verdicts."""
    store_path = tmp_path / "store.db"
    schema, pairs = containment_batch("social")
    serial = ContainmentEngine().check_many(pairs[:2], schema=schema)

    writer = ContainmentEngine(persist=store_path)
    try:  # one process batch persists the schema under its fingerprint
        writer.check_many(pairs[:2], schema=schema, parallel="process")
    finally:
        writer.shutdown()
        writer.close()

    engine = ContainmentEngine(max_workers=1, persist=store_path)
    try:
        pool = engine.process_pool()
        pool.start()
        # schema token "already sent", query tokens still ship as values
        poison_ledgers(pool, schema, pairs[:2], queries=False)
        results = engine.check_many(pairs[:2], schema=schema, parallel="process")
        assert fingerprints(results) == fingerprints(serial)
        assert pool.worker_transport().store_hits >= 1
        assert pool.transport_stats.fallback_items == 0
    finally:
        engine.shutdown()
        engine.close()


def seeded_engine_and_pool(schema, pairs):
    """An engine whose automata cache holds computed DFAs for *schema* — the
    state a warm parent is in when it seeds a fresh pool."""
    engine = ContainmentEngine(max_workers=1)
    engine.check_many(pairs, schema=schema)  # warm the automata cache
    with engine._lock:
        bundles = [bundle for _key, bundle in engine._automata.items()]
    assert bundles, "the serial run must have compiled automata"
    for bundle in bundles:
        bundle.dfa()
        bundle.minimal_dfa()
    return engine


@pytest.mark.parametrize("no_shm", [False, True], ids=["shm", "pickle-fallback"])
def test_seeded_process_runs_are_bit_identical(monkeypatch, no_shm):
    if no_shm:
        monkeypatch.setenv(SHM_DISABLE_VARIABLE, "1")
    schema, pairs = containment_batch("medical")
    serial = ContainmentEngine().check_many(pairs, schema=schema)
    engine = seeded_engine_and_pool(schema, pairs)
    try:
        results = engine.check_many(pairs, schema=schema, parallel="process")
        assert fingerprints(results) == fingerprints(serial)
        pool = engine.process_pool()
        assert pool.transport_stats.seeds_published == 1
        assert pool.transport_stats.shm_segments == (0 if no_shm else 1)
        assert pool.worker_transport().automata_seeded >= 1
        # a second batch over the same schema does not re-seed
        engine.check_many(pairs[:2], schema=schema, parallel="process")
        assert pool.transport_stats.seeds_published == 1
    finally:
        engine.shutdown()


def test_interrupted_pool_releases_its_seed_segments(monkeypatch):
    """KeyboardInterrupt mid-batch must reclaim shared memory, not just the
    worker processes (companion to the lifecycle test in test_parallel)."""
    schema, pairs = containment_batch("medical")
    engine = seeded_engine_and_pool(schema, pairs)
    try:
        engine.check_many(pairs[:2], schema=schema, parallel="process")
        pool = engine.process_pool()
        segment_names = [segment.name for segment in pool._segments]
        if segment_names:  # skip-free: under REPRO_NO_SHM there is no segment
            assert set(segment_names) <= set(live_seed_segments())

        def interrupted_receive():
            raise KeyboardInterrupt()

        monkeypatch.setattr(pool, "_receive", interrupted_receive)
        with pytest.raises(KeyboardInterrupt):
            engine.check_many(pairs[:2], schema=schema, parallel="process")
        assert pool.closed and not pool._segments
        assert not set(segment_names) & set(live_seed_segments())
    finally:
        engine.shutdown()


def test_dropped_pool_reaps_segments_without_close():
    import gc

    schema, pairs = containment_batch("medical")
    engine = seeded_engine_and_pool(schema, pairs)
    engine.check_many(pairs[:2], schema=schema, parallel="process")
    pool = engine.process_pool()
    segment_names = [segment.name for segment in pool._segments]
    engine._process_pool = None  # drop without close(): only the GC finalizer runs
    del pool
    gc.collect()
    assert not set(segment_names) & set(live_seed_segments())


def test_transport_report_shapes():
    import json

    schema, pairs = containment_batch("medical")
    engine = ContainmentEngine(max_workers=1)
    try:
        assert engine.transport_report() is None  # no pool yet
        engine.check_many(pairs[:2], schema=schema, parallel="process")
        report = engine.transport_report()
        assert report["parent"]["items"] == 2
        assert report["workers"] is None  # no stats collection yet
        engine.process_pool().worker_transport()
        report = engine.transport_report()
        assert report["workers"]["values_registered"] >= 1
        json.dumps(report)  # must serialise for /stats
    finally:
        engine.shutdown()
