"""Tests for homomorphisms, sparsity, skeletons and isomorphism."""


from repro.graph import (
    Graph,
    GraphBuilder,
    find_homomorphism,
    is_c_sparse,
    is_homomorphism,
    isomorphic,
    skeleton,
    sparsity_constant,
)
from repro.graph.generators import cycle_graph, path_graph, random_tree, star_graph


class TestHomomorphism:
    def test_identity_is_homomorphism(self):
        graph = GraphBuilder().node("a", "A").edge("a", "r", "b").build()
        mapping = {node: node for node in graph.nodes()}
        assert is_homomorphism(mapping, graph, graph)

    def test_label_preservation_required(self):
        source = GraphBuilder().node("a", "A").build()
        target = GraphBuilder().node("b", "B").build()
        assert not is_homomorphism({"a": "b"}, source, target)

    def test_edge_preservation_required(self):
        source = GraphBuilder().edge("a", "r", "b").build()
        target = GraphBuilder().node("x").node("y").build()
        assert not is_homomorphism({"a": "x", "b": "y"}, source, target)

    def test_find_homomorphism_collapses_path_onto_loop(self):
        path = path_graph(3, "A", "r")
        loop = cycle_graph(1, "A", "r")
        mapping = find_homomorphism(path, loop)
        assert mapping is not None
        assert is_homomorphism(mapping, path, loop)

    def test_find_homomorphism_none_when_impossible(self):
        source = cycle_graph(1, "A", "r")  # needs an r-loop in the target
        target = path_graph(2, "A", "r")
        assert find_homomorphism(source, target) is None

    def test_find_homomorphism_respects_labels(self):
        source = GraphBuilder().node("a", "A").build()
        target = GraphBuilder().node("x", "A", "B").node("y", "B").build()
        mapping = find_homomorphism(source, target)
        assert mapping == {"a": "x"}


class TestSparsity:
    def test_tree_is_minus_one_sparse(self):
        tree = random_tree(10, ["A"], ["r"], seed=0)
        assert sparsity_constant(tree) == -1
        assert is_c_sparse(tree, 0)

    def test_cycle_is_zero_sparse(self):
        cycle = cycle_graph(5, "A", "r")
        assert sparsity_constant(cycle) == 0
        assert is_c_sparse(cycle, 0)
        assert not is_c_sparse(cycle, -1)

    def test_dense_graph_not_sparse(self):
        graph = Graph()
        for a in range(4):
            for b in range(4):
                if a != b:
                    graph.add_edge(a, "r", b)
        assert not is_c_sparse(graph, 2)


class TestSkeleton:
    def test_path_collapses_to_nothing(self):
        # a path is all "attached tree": pruning degree-1 nodes removes it entirely
        result = skeleton(path_graph(5, "A", "r"))
        assert result.k == 0
        assert result.l == 0
        assert len(result.removed_trees) == 6

    def test_cycle_is_a_1_1_skeleton(self):
        result = skeleton(cycle_graph(6, "A", "r"))
        assert result.k == 1
        assert result.l == 1
        assert result.is_within(2, 3)

    def test_star_prunes_all_leaves(self):
        # a star is a tree: everything is pruned, nothing of the core remains
        result = skeleton(star_graph(5, "Hub", "Leaf", "r"))
        assert result.k == 0
        assert len(result.removed_trees) == 6

    def test_theta_graph_has_two_distinguished_nodes(self):
        # two nodes connected by three internally disjoint paths (a "theta")
        graph = Graph()
        graph.add_edge("u", "r", "v")
        graph.add_edge("u", "s", "m1")
        graph.add_edge("m1", "s", "v")
        graph.add_edge("u", "t", "m2")
        graph.add_edge("m2", "t", "v")
        result = skeleton(graph)
        assert result.distinguished == {"u", "v"}
        assert result.l == 3
        # m = n + 1 here, so the graph is 1-sparse and fits a (2,3)-skeleton
        assert sparsity_constant(graph) == 1
        assert result.is_within(2, 3)

    def test_skeleton_bound_matches_lemma_e1(self):
        # Lemma E.1: a connected c-sparse graph with min degree 2 is a (2c,3c)-skeleton
        graph = cycle_graph(4, "A", "r")
        graph.add_edge(0, "s", 2)
        c = sparsity_constant(graph)
        result = skeleton(graph)
        assert result.is_within(2 * max(c, 1), 3 * max(c, 1))


class TestIsomorphism:
    def test_isomorphic_relabelled_cycle(self):
        left = cycle_graph(4, "A", "r")
        right = left.relabel_nodes({0: "a", 1: "b", 2: "c", 3: "d"})
        assert isomorphic(left, right)

    def test_non_isomorphic_different_sizes(self):
        assert not isomorphic(cycle_graph(3, "A", "r"), cycle_graph(4, "A", "r"))

    def test_non_isomorphic_same_size_different_structure(self):
        assert not isomorphic(path_graph(3, "A", "r"), star_graph(3, "A", "A", "r"))

    def test_label_mismatch_detected(self):
        left = GraphBuilder().node("a", "A").node("b", "B").edge("a", "r", "b").build()
        right = GraphBuilder().node("a", "A").node("b", "A").edge("a", "r", "b").build()
        assert not isomorphic(left, right)
