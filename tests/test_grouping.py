"""Tests for the grouped queries Q_A and Q_{A,R,B}, conjunction helpers and
trimming (Section 4, Appendix B)."""

import pytest

from repro.graph import forward, inverse
from repro.rpq import eval_uc2rpq
from repro.transform import (
    canonical_variables,
    conjoin_unions,
    edge_query,
    equality_query,
    node_query,
    trim,
    unsatisfiable_query,
)
from repro.transform.parser import parse_transformation
from repro.workloads import medical


@pytest.fixture(scope="module")
def migration():
    return medical.migration()


class TestGroupedQueries:
    def test_example_43_node_query(self, migration, medical_graph):
        q_vaccine = node_query(migration, "Vaccine")
        assert len(q_vaccine) == 1
        answers = eval_uc2rpq(q_vaccine, medical_graph)
        assert ("measles-vaccine",) in answers and ("mumps-vaccine",) in answers

    def test_example_43_edge_query(self, migration, medical_graph):
        q_targets = edge_query(migration, "Vaccine", forward("targets"), "Antigen")
        answers = eval_uc2rpq(q_targets, medical_graph)
        assert ("measles-vaccine", "H-protein") in answers
        assert ("measles-vaccine", "F-protein") in answers
        assert ("mumps-vaccine", "F-protein") not in answers

    def test_inverse_edge_query_swaps_sides(self, migration, medical_graph):
        q_inverse = edge_query(migration, "Antigen", inverse("targets"), "Vaccine")
        answers = eval_uc2rpq(q_inverse, medical_graph)
        assert ("H-protein", "measles-vaccine") in answers

    def test_missing_label_gives_empty_union(self, migration):
        assert node_query(migration, "Unknown").is_empty()
        assert edge_query(migration, "Vaccine", forward("unknown"), "Antigen").is_empty()

    def test_multiple_rules_become_union(self):
        transformation = medical.redundant_migration()
        q_targets = edge_query(transformation, "Vaccine", forward("targets"), "Antigen")
        assert len(q_targets) == 2

    def test_canonical_variable_names(self, migration):
        q_edge = edge_query(migration, "Vaccine", forward("targets"), "Antigen")
        assert q_edge.disjuncts[0].free_variables == ("x1", "y1")
        assert canonical_variables("z", 3) == ("z1", "z2", "z3")

    def test_binary_constructor_arities(self):
        reify = parse_transformation(
            """
            transformation R {
              Person(fP(x)) <- (Person)(x);
              Membership(fM(x, y)) <- (Person . memberOf . Group)(x, y);
              who(fM(x, y), fP(x)) <- (Person . memberOf . Group)(x, y);
            }
            """
        )
        q_member = node_query(reify, "Membership")
        assert q_member.arity() == 2
        q_who = edge_query(reify, "Membership", forward("who"), "Person")
        assert q_who.disjuncts[0].free_variables == ("x1", "x2", "y1")


class TestCombinators:
    def test_conjoin_unions_distributes(self, migration):
        left = node_query(migration, "Vaccine")
        right = edge_query(migration, "Vaccine", forward("targets"), "Antigen")
        conjunction = conjoin_unions(left, right)
        assert len(conjunction) == len(left) * len(right)
        # x1 is shared between the two sides, y1 comes from the edge query
        assert conjunction.disjuncts[0].free_variables == ("x1", "y1")

    def test_conjoin_with_empty_is_empty(self, migration):
        left = node_query(migration, "Vaccine")
        assert conjoin_unions(left, node_query(migration, "Unknown")).is_empty()

    def test_equality_query_shape(self):
        union = equality_query(["y1"], ["z1"])
        assert union.arity() == 2
        assert union.disjuncts[0].atoms[0].regex.nullable()

    def test_equality_query_length_mismatch(self):
        from repro.exceptions import TransformationError

        with pytest.raises(TransformationError):
            equality_query(["y1"], ["z1", "z2"])

    def test_unsatisfiable_query(self, medical_graph):
        union = unsatisfiable_query(["x1"])
        assert eval_uc2rpq(union, medical_graph) == set()


class TestTrimming:
    def test_productive_rules_kept(self, migration, medical_source_schema):
        trimmed = trim(migration, medical_source_schema)
        assert len(trimmed.rules()) == len(migration.rules())

    def test_unproductive_rule_removed(self, medical_source_schema):
        with_dead_rule = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x))  <- (Vaccine)(x);
              Antigen(fA(x))  <- (Antigen)(x);
              targets(fV(x), fA(y)) <- (exhibits)(x, y), Vaccine(x);
            }
            """
        )
        trimmed = trim(with_dead_rule, medical_source_schema)
        # the edge rule's body requires a Vaccine with an exhibits edge, which
        # the schema forbids, so the rule is unproductive
        assert len(trimmed.edge_rules) == 0
        assert len(trimmed.node_rules) == 2
        assert "targets" not in trimmed.edge_labels()
