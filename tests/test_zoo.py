"""The workload zoo: generator determinism, DSL round-trips, family shapes.

The zoo's load-bearing property is *textual transportability*: every
generated schema must survive ``schema_to_text`` → ``parse_schema`` with an
identical canonical fingerprint, and every generated query must survive
``str`` → ``parse_c2rpq`` with an identical canonical token and name —
otherwise replay traces and the service wire format would silently decide
different instances than the in-process corpus.
"""

import random

import pytest

from repro.rpq.parser import parse_c2rpq
from repro.schema.parser import parse_schema, schema_to_text
from repro.workloads.zoo import (
    ZOO_FAMILIES,
    ZOO_SEED,
    atm_fragment_suite,
    property_corpus,
    random_pair,
    random_schema,
    tree_device_suite,
    zoo_corpus,
)


def test_property_corpus_is_reproducible():
    first = property_corpus(ZOO_SEED, schemas=3, queries_per_schema=4)
    second = property_corpus(ZOO_SEED, schemas=3, queries_per_schema=4)
    assert len(first) == 12
    assert [(str(l), str(r), s.canonical_fingerprint()) for l, r, s in first] == [
        (str(l), str(r), s.canonical_fingerprint()) for l, r, s in second
    ]


def test_different_seeds_differ():
    first = property_corpus(1, schemas=2, queries_per_schema=3)
    second = property_corpus(2, schemas=2, queries_per_schema=3)
    assert [str(l) for l, _, _ in first] != [str(l) for l, _, _ in second]


def test_schemas_have_disjoint_fingerprints():
    corpus = property_corpus(ZOO_SEED, schemas=6, queries_per_schema=1)
    fingerprints = {schema.canonical_fingerprint() for _, _, schema in corpus}
    assert len(fingerprints) == 6


def test_generated_schemas_round_trip_through_the_dsl():
    rng = random.Random(99)
    for index in range(10):
        schema = random_schema(rng, index)
        parsed = parse_schema(schema_to_text(schema))
        assert parsed.canonical_fingerprint() == schema.canonical_fingerprint()


def test_generated_queries_round_trip_through_their_source_text():
    rng = random.Random(99)
    schema = random_schema(rng, 0)
    for _ in range(25):
        left, right = random_pair(rng, schema, "t")
        for query in (left, right):
            parsed = parse_c2rpq(str(query))
            assert parsed.canonical_token() == query.canonical_token()
            assert parsed.name == query.name


def test_corpus_rejects_bad_knobs():
    with pytest.raises(ValueError):
        property_corpus(schemas=0)
    with pytest.raises(ValueError):
        random_schema(random.Random(0), node_labels=0)
    with pytest.raises(ValueError):
        zoo_corpus(families=("no-such-family",))


def test_tree_device_suite_shape():
    suite = tree_device_suite()
    assert len(suite) == 5
    schema = suite[0][2]
    assert all(pair[2] is schema for pair in suite)  # one shared schema


def test_atm_fragment_suite_has_both_directions():
    suite = atm_fragment_suite(words=("11",), max_fragments_per_instance=4)
    names = [left.name for left, _, _ in suite]
    assert any(name.startswith("frag_") for name in names)
    assert not names[-1].startswith("frag_")  # the reverse (union ⊄ head) pair


def test_zoo_corpus_defaults_cover_every_family():
    corpus = zoo_corpus(schemas=1, queries_per_schema=2)
    assert set(corpus) == {"property", *ZOO_FAMILIES}
    assert all(corpus.values())
