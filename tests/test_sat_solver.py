"""Tests for satisfiability of Boolean (U)C2RPQs modulo Horn TBoxes (Thm 6.1)."""

import pytest

from repro.chase import SatisfiabilityConfig, SatisfiabilitySolver, build_pattern, is_satisfiable
from repro.dl import (
    ForAllCI,
    NoExistsCI,
    SubclassOfBottom,
    TBox,
    conj,
    schema_to_extended_tbox,
)
from repro.exceptions import SolverError
from repro.graph import forward
from repro.rpq import parse_c2rpq, parse_uc2rpq
from repro.workloads import medical


@pytest.fixture(scope="module")
def medical_tbox():
    return schema_to_extended_tbox(medical.source_schema())


class TestPatternConstruction:
    def test_simple_path_pattern(self):
        query = parse_c2rpq("q() := (Vaccine . designTarget . Antigen)(x, y)")
        from repro.rpq import build_nfa

        word = build_nfa(query.atoms[0].regex).shortest_word()
        pattern, assignment = build_pattern(list(query.atoms), [word])
        assert pattern.has_label(assignment["x"], "Vaccine")
        assert pattern.has_label(assignment["y"], "Antigen")
        assert pattern.has_edge(assignment["x"], "designTarget", assignment["y"])

    def test_inverse_step_creates_reversed_edge(self):
        query = parse_c2rpq("q() := (designTarget-)(x, y)")
        from repro.rpq import build_nfa

        word = build_nfa(query.atoms[0].regex).shortest_word()
        pattern, assignment = build_pattern(list(query.atoms), [word])
        assert pattern.has_edge(assignment["y"], "designTarget", assignment["x"])

    def test_edge_free_word_merges_variables(self):
        query = parse_c2rpq("q() := (Vaccine)(x, y)")
        from repro.rpq import build_nfa

        word = build_nfa(query.atoms[0].regex).shortest_word()
        pattern, assignment = build_pattern(list(query.atoms), [word])
        assert assignment["x"] == assignment["y"]

    def test_shared_variables_join_atoms(self):
        query = parse_c2rpq("q() := (a)(x, y), (b)(y, z)")
        from repro.rpq import build_nfa

        words = [build_nfa(atom.regex).shortest_word() for atom in query.atoms]
        pattern, assignment = build_pattern(list(query.atoms), words)
        assert pattern.has_edge(assignment["x"], "a", assignment["y"])
        assert pattern.has_edge(assignment["y"], "b", assignment["z"])


class TestSatisfiability:
    def test_unconstrained_query_is_satisfiable(self):
        result = is_satisfiable(parse_c2rpq("q() := (r)(x, y)"), TBox())
        assert result.satisfiable
        assert result.witness is not None

    def test_conflicting_labels_unsatisfiable(self):
        tbox = TBox([SubclassOfBottom(conj("A", "B"))])
        result = is_satisfiable(parse_c2rpq("q() := A(x), B(x)"), tbox)
        assert not result.satisfiable and result.conclusive

    def test_forbidden_edge_unsatisfiable(self):
        tbox = TBox([NoExistsCI(conj("A"), forward("r"), conj())])
        assert not is_satisfiable(parse_c2rpq("q() := A(x), (r)(x, y)"), tbox)

    def test_forall_propagation_can_refute(self):
        tbox = TBox(
            [
                ForAllCI(conj("A"), forward("r"), conj("B")),
                SubclassOfBottom(conj("B", "C")),
            ]
        )
        assert not is_satisfiable(parse_c2rpq("q() := A(x), (r)(x, y), C(y)"), tbox)
        assert is_satisfiable(parse_c2rpq("q() := A(x), (r)(x, y)"), tbox)

    def test_star_needs_longer_word(self, medical_tbox):
        # only with at least two crossReacting steps can x and z differ ... the
        # enumeration must try words beyond the shortest one
        query = parse_c2rpq(
            "q() := Vaccine(x), (designTarget . crossReacting . crossReacting)(x, y)"
        )
        assert is_satisfiable(query, medical_tbox).satisfiable

    def test_medical_schema_constraints(self, medical_tbox):
        assert is_satisfiable(parse_c2rpq("q() := (exhibits)(x, y)"), medical_tbox)
        # the Horn TBox alone only constrains *labeled* targets; with the label
        # present the ¬∃ statement fires (the containment solver adds the
        # missing-label branching on top of this engine)
        assert not is_satisfiable(
            parse_c2rpq("q() := (exhibits)(x, y), Vaccine(x), Antigen(y)"), medical_tbox
        )
        assert not is_satisfiable(
            parse_c2rpq("q() := Vaccine(x), Antigen(x)"), medical_tbox
        )

    def test_union_satisfiable_if_any_disjunct_is(self, medical_tbox):
        union = parse_uc2rpq(
            ["q() := Vaccine(x), Antigen(x)", "q() := Pathogen(x)"]
        ).boolean()
        assert is_satisfiable(union, medical_tbox).satisfiable

    def test_empty_union_unsatisfiable(self, medical_tbox):
        from repro.rpq import UC2RPQ

        result = is_satisfiable(UC2RPQ([], name="false"), medical_tbox)
        assert not result.satisfiable and result.regime == "exact"

    def test_non_boolean_query_rejected(self, medical_tbox):
        with pytest.raises(SolverError):
            is_satisfiable(parse_c2rpq("q(x) := Vaccine(x)"), medical_tbox)

    def test_witness_is_model_of_tbox(self, medical_tbox):
        result = is_satisfiable(
            parse_c2rpq("q() := (designTarget)(x, y), (crossReacting)(y, z)"), medical_tbox
        )
        assert result.satisfiable
        # the witness pattern satisfies every universal statement of the TBox
        witness = result.witness
        for statement in medical_tbox.no_exists_statements():
            assert statement.holds_in(witness)

    def test_regimes_reported(self, medical_tbox):
        finite = parse_c2rpq("q() := (designTarget)(x, y)")
        assert is_satisfiable(finite, medical_tbox).regime == "exact"
        starred = parse_c2rpq("q() := (crossReacting*)(x, y), Antigen(x), Antigen(y)")
        result = is_satisfiable(starred, medical_tbox)
        assert result.satisfiable
        unsat = parse_c2rpq("q() := (crossReacting)(x, y), Vaccine(x), Antigen(y)")
        unsat_result = is_satisfiable(unsat, medical_tbox)
        assert not unsat_result.satisfiable and unsat_result.conclusive

    def test_config_relaxation(self):
        config = SatisfiabilityConfig(max_word_length=4)
        relaxed = config.relaxed(2)
        assert relaxed.max_word_length == 8
        assert relaxed.max_state_repeats == config.max_state_repeats + 1

    def test_solver_counts_patterns(self, medical_tbox):
        solver = SatisfiabilitySolver(medical_tbox)
        result = solver.is_satisfiable(parse_c2rpq("q() := (crossReacting*)(x, y)").boolean())
        assert result.satisfiable
        assert result.patterns_checked >= 1


class TestTruncatedBoundaries:
    """Lock in the regime semantics when a cap is hit *exactly*."""

    REFUTING = TBox([NoExistsCI(conj("A"), forward("r"), conj())])

    def test_word_count_cap_hit_exactly_is_truncated(self):
        # (s + t) has exactly two words; enumerating both while the cap is
        # two still reports "truncated" — the solver cannot tell completion
        # from cut-off when len(words) == max_words_per_atom
        config = SatisfiabilityConfig(max_words_per_atom=2)
        result = is_satisfiable(
            parse_c2rpq("q() := A(x), (r)(x, y), (s + t)(y, z)"), self.REFUTING, config
        )
        assert not result.satisfiable
        assert result.regime == "truncated"

    def test_word_count_one_above_the_cap_is_exact(self):
        config = SatisfiabilityConfig(max_words_per_atom=3)
        result = is_satisfiable(
            parse_c2rpq("q() := A(x), (r)(x, y), (s + t)(y, z)"), self.REFUTING, config
        )
        assert not result.satisfiable
        assert result.regime == "exact"

    def test_word_length_cap_hit_exactly_by_finite_language_is_pumped(self):
        # a fully enumerated finite language whose longest word has exactly
        # max_word_length letters is reported "pumped", not "exact": a longer
        # word could have been cut off at the same bound
        config = SatisfiabilityConfig(max_word_length=2)
        result = is_satisfiable(
            parse_c2rpq("q() := A(x), (r . s)(x, y)"), self.REFUTING, config
        )
        assert not result.satisfiable
        assert result.regime == "pumped"

    def test_pattern_cap_equal_to_combination_count_stays_exact(self):
        # exactly max_patterns combinations: every one is chased, no cut-off
        config = SatisfiabilityConfig(max_patterns=2)
        result = is_satisfiable(
            parse_c2rpq("q() := A(x), (r)(x, y), (s + t)(y, z)"), self.REFUTING, config
        )
        assert not result.satisfiable
        assert result.regime == "exact"
        assert result.patterns_checked == 2

    def test_pattern_cap_below_combination_count_is_truncated(self):
        config = SatisfiabilityConfig(max_patterns=1)
        result = is_satisfiable(
            parse_c2rpq("q() := A(x), (r)(x, y), (s + t)(y, z)"), self.REFUTING, config
        )
        assert not result.satisfiable
        assert result.regime == "truncated"
        assert result.patterns_checked == 1
