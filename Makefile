# Developer entry points. Everything runs from the repo root with the
# in-tree sources on PYTHONPATH, so no install step is required.

PY ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench docs-check check

# tier-1 test suite (the gate every change must keep green)
test:
	$(PY) -m pytest -x -q

# the engine-centric benchmarks: cold/warm batches and the analysis breakdown
bench-smoke:
	$(PY) -m pytest -q -s benchmarks/bench_scaling_containment.py benchmarks/bench_pipeline_breakdown.py

# every benchmark suite (bench_*.py files are not auto-collected; list them)
bench:
	$(PY) -m pytest -q $(wildcard benchmarks/bench_*.py)

# execute README/docs code blocks and validate internal doc references
docs-check:
	$(PY) tools/docs_check.py

check: test docs-check
