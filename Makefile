# Developer entry points. Everything runs from the repo root with the
# in-tree sources on PYTHONPATH, so no install step is required.

PY ?= python
export PYTHONPATH := src

.PHONY: test lint bench-smoke bench docs-check trend coverage check

# tier-1 test suite (the gate every change must keep green)
test:
	$(PY) -m pytest -x -q

# ruff over the whole tree (config in ruff.toml); CI installs ruff and
# enforces this — locally the target degrades to a notice when the
# container does not ship ruff, rather than masking real failures
lint:
	@if $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check .; \
	else \
		echo "lint: ruff is not installed here; skipping (CI installs and enforces it)"; \
	fi

# the engine-centric benchmarks: cold/warm batches and the analysis breakdown
bench-smoke:
	$(PY) -m pytest -q -s benchmarks/bench_scaling_containment.py benchmarks/bench_pipeline_breakdown.py

# every benchmark suite. bench_*.py files are deliberately not auto-collected,
# so they are discovered here — and the discovery is checked: an empty match
# (e.g. after a rename) fails loudly instead of silently running nothing.
BENCH_FILES := $(wildcard benchmarks/bench_*.py)
bench:
	@if [ -z "$(BENCH_FILES)" ]; then \
		echo "bench: no benchmarks/bench_*.py files matched — wildcard is broken or suites were moved" >&2; \
		exit 1; \
	fi
	@echo "bench: discovered $(words $(BENCH_FILES)) suites: $(BENCH_FILES)"
	$(PY) -m pytest -q -s -rs $(BENCH_FILES)

# execute README/docs code blocks and validate internal doc references
docs-check:
	$(PY) tools/docs_check.py

# collect the five bench suites (backends, automata, store, service, zoo)
# into BENCH_current.json and compare the timings against the committed
# baseline (benchmarks/trend/BENCH_*.json); regressions in the blocking
# suites (backends, service) fail the target, the rest print warnings
trend:
	$(PY) tools/bench_trend.py collect --output BENCH_current.json
	$(PY) tools/bench_trend.py compare --current BENCH_current.json

# tier-1 suite under coverage (requires pytest-cov; CI compares the total
# against the recorded baseline in .github/coverage-baseline.txt)
coverage:
	$(PY) -m pytest -x -q --cov=repro --cov-report=term --cov-report=json

check: lint test docs-check
