"""FHIR-style patient-record migration: version 3 → version 4.

Demonstrates the schema-evolution use case that motivates the paper (data
migration between consecutive versions of a healthcare interchange format):
derived relationships via concatenated paths, renamed edges and literal-value
nodes, all statically type-checked before running on data.
"""

from repro.analysis import check_equivalence, elicit_schema, type_check
from repro.schema import check_conformance, schema_to_text
from repro.workloads import fhir


def main() -> None:
    source, target = fhir.schema_v3(), fhir.schema_v4()
    migration = fhir.migration_v3_to_v4()
    broken = fhir.broken_migration_v3_to_v4()

    print("source schema:")
    print(schema_to_text(source))
    print()

    # static analysis first ...
    print(type_check(migration, source, target).summary())
    print(type_check(broken, source, target).summary())
    print(check_equivalence(migration, broken, source).summary())

    # ... then the actual migration
    instance = fhir.random_instance(patients=8, practitioners=4, organizations=3, seed=7)
    migrated = migration.apply(instance)
    print()
    print("migrated", instance.node_count(), "source nodes into", migrated.node_count(), "target nodes")
    print(check_conformance(migrated, target).summary())

    # what schema does the migration actually guarantee?  (elicitation)
    elicited = elicit_schema(migration, source)
    print()
    print("elicited schema (tightest fit of the migration's outputs):")
    print(schema_to_text(elicited.schema))


if __name__ == "__main__":
    main()
