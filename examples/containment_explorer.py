"""Query containment modulo schema, step by step.

Walks through the reduction pipeline of Section 5 on two instructive
instances: the medical example (Example 4.4/4.5) and the finite-versus-
unrestricted example that motivates cycle reversing (Examples 5.2/5.3/5.5).
"""

from repro.containment import (
    ContainmentConfig,
    ContainmentSolver,
    booleanize,
    complete,
    roll_up,
    schema_has_finmod_cycle,
)
from repro.dl import schema_to_extended_tbox
from repro.rpq import UC2RPQ, parse_c2rpq
from repro.schema import Schema
from repro.workloads import medical


def explore(schema, left_text, right_text) -> None:
    left = UC2RPQ.from_query(parse_c2rpq(left_text), name="P")
    right = UC2RPQ.from_query(parse_c2rpq(right_text), name="Q")
    print(f"--- {left_text}   ⊆_{schema.name}   {right_text}")

    reduction = booleanize(schema, left, right)
    print("  booleanized: markers =", list(reduction.marker_node_labels) or "(boolean already)")
    schema_tbox = schema_to_extended_tbox(reduction.schema)
    rolled = roll_up(reduction.right)
    print(f"  T̂_S has {schema_tbox.size()} statements, T_¬Q has {rolled.tbox.size()}")
    combined = schema_tbox.union(rolled.tbox)
    completion = complete(combined, reduction.schema)
    print(
        "  completion:",
        "not needed (no finmod cycle)" if completion.skipped
        else f"{completion.reversed_cycles} cycles reversed, {completion.added_statements} statements added",
    )
    result = ContainmentSolver(schema).contains(left, right)
    print("  verdict:", result.summary())
    print()


def main() -> None:
    s0 = medical.source_schema()
    explore(s0, "p(x) := Vaccine(x)", "q(x) := (designTarget . crossReacting*)(x, y)")
    explore(s0, "p(x) := (designTarget . crossReacting*)(x, y)", "q(x) := Vaccine(x)")
    explore(s0, "p(x) := Antigen(x)", "q(x) := (crossReacting)(x, y)")

    # Example 5.2: containment that holds over finite graphs only
    s52 = Schema(["A"], ["s", "r"], name="S52")
    s52.set_edge("A", "s", "A", "+", "?")
    s52.set_edge("A", "r", "A", "*", "*")
    print("schema S52 has a finmod cycle:", schema_has_finmod_cycle(s52))
    explore(s52, "p() := (r)(x, x)", "q() := (r . s+ . r)(x, y)")

    # the same instance decided over unrestricted models (ablation: no reversal)
    result = ContainmentSolver(s52, ContainmentConfig(apply_completion=False)).contains(
        parse_c2rpq("p() := (r)(x, x)"), parse_c2rpq("q() := (r . s+ . r)(x, y)")
    )
    print("without cycle reversing (unrestricted models):", result.summary())


if __name__ == "__main__":
    main()
