"""Target schema elicitation on the social-network reification workload.

The reification transformation turns ``memberOf`` edges into ``Membership``
nodes using a *binary* node constructor; elicitation reconstructs — without
ever running the transformation — the tightest schema its outputs satisfy,
and the result is compared against the hand-written evolved schema.
"""

from repro.analysis import elicit_schema, type_check
from repro.schema import schema_contained_in, schema_equivalent, schema_to_text
from repro.workloads import social


def main() -> None:
    source, handwritten_target = social.schema_v1(), social.schema_v2()
    reify = social.reification()

    result = elicit_schema(reify, source)
    print("elicited schema:")
    print(schema_to_text(result.schema))
    print()
    print("containment calls performed:", result.containment_calls)
    print(
        "entailed statements:",
        sum(1 for entailment in result.statements if entailment.entailed),
        "of",
        len(result.statements),
    )

    print()
    print("elicited ⊑ hand-written:", schema_contained_in(result.schema, handwritten_target))
    print("hand-written ⊑ elicited:", schema_contained_in(handwritten_target, result.schema))
    print("equivalent:", schema_equivalent(result.schema, handwritten_target))

    # elicitation is the containment-minimal schema: type checking against it
    # must succeed, and it must be contained in every schema that type-checks
    print()
    print(type_check(reify, source, result.schema, pre_trimmed=True).summary())
    print(type_check(reify, source, handwritten_target, pre_trimmed=True).summary())


if __name__ == "__main__":
    main()
