"""Quickstart: schemas, graphs, queries, transformations, static analysis.

Run with ``python examples/quickstart.py``.  The scenario is the paper's
running example (Figure 1): a medical knowledge graph whose schema evolves,
and the transformation that migrates the data.
"""

from repro import Schema, conforms, parse_c2rpq, parse_transformation, type_check
from repro.analysis import check_equivalence, elicit_schema
from repro.containment import ContainmentSolver
from repro.graph import GraphBuilder
from repro.rpq import eval_c2rpq


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. schemas with participation constraints (Figure 1)
    # ------------------------------------------------------------------ #
    source = Schema(
        ["Vaccine", "Antigen", "Pathogen"],
        ["designTarget", "crossReacting", "exhibits"],
        name="S0",
    )
    source.set_edge("Vaccine", "designTarget", "Antigen", "1", "*")
    source.set_edge("Antigen", "crossReacting", "Antigen", "*", "*")
    source.set_edge("Pathogen", "exhibits", "Antigen", "+", "*")

    target = Schema(
        ["Vaccine", "Antigen", "Pathogen"],
        ["designTarget", "targets", "exhibits"],
        name="S1",
    )
    target.set_edge("Vaccine", "designTarget", "Antigen", "1", "*")
    target.set_edge("Vaccine", "targets", "Antigen", "+", "*")
    target.set_edge("Pathogen", "exhibits", "Antigen", "+", "*")

    # ------------------------------------------------------------------ #
    # 2. a conforming instance graph
    # ------------------------------------------------------------------ #
    graph = (
        GraphBuilder()
        .node("measles-vaccine", "Vaccine")
        .node("H-protein", "Antigen")
        .node("F-protein", "Antigen")
        .node("measles-virus", "Pathogen")
        .edge("measles-vaccine", "designTarget", "H-protein")
        .edge("H-protein", "crossReacting", "F-protein")
        .edge("measles-virus", "exhibits", "H-protein")
        .edge("measles-virus", "exhibits", "F-protein")
        .build()
    )
    print("instance conforms to S0:", conforms(graph, source))

    # ------------------------------------------------------------------ #
    # 3. querying with C2RPQs (Example 3.2)
    # ------------------------------------------------------------------ #
    query = parse_c2rpq(
        "targeted(v, a) := (Vaccine . designTarget . crossReacting* . Antigen)(v, a)"
    )
    print("vaccine/antigen pairs:", sorted(eval_c2rpq(query, graph)))

    # ------------------------------------------------------------------ #
    # 4. the migration transformation (Example 4.1) and its application
    # ------------------------------------------------------------------ #
    migration = parse_transformation(
        """
        transformation T0 {
          Vaccine(fV(x))              <- (Vaccine)(x);
          Antigen(fA(x))              <- (Antigen)(x);
          Pathogen(fP(x))             <- (Pathogen)(x);
          designTarget(fV(x), fA(y))  <- (designTarget)(x, y);
          targets(fV(x), fA(y))       <- (designTarget . crossReacting*)(x, y);
          exhibits(fP(x), fA(y))      <- (exhibits)(x, y);
        }
        """
    )
    output = migration.apply(graph)
    print("migrated graph conforms to S1:", conforms(output, target))

    # ------------------------------------------------------------------ #
    # 5. static analysis: type checking, elicitation, equivalence, containment
    # ------------------------------------------------------------------ #
    print(type_check(migration, source, target).summary())

    elicited = elicit_schema(migration, source)
    print("elicited target schema:")
    print("  Vaccine -targets-> Antigen :", elicited.schema.multiplicity("Vaccine", "targets", "Antigen"))

    redundant = parse_transformation(
        """
        transformation T0b {
          Vaccine(fV(x))              <- (Vaccine)(x);
          Antigen(fA(x))              <- (Antigen)(x);
          Pathogen(fP(x))             <- (Pathogen)(x);
          designTarget(fV(x), fA(y))  <- (designTarget)(x, y);
          targets(fV(x), fA(y))       <- (designTarget)(x, y);
          targets(fV(x), fA(y))       <- (designTarget . crossReacting*)(x, y);
          exhibits(fP(x), fA(y))      <- (exhibits)(x, y);
        }
        """
    )
    print(check_equivalence(migration, redundant, source).summary())

    solver = ContainmentSolver(source)
    containment = solver.contains(
        parse_c2rpq("p(x) := Vaccine(x)"),
        parse_c2rpq("q(x) := (designTarget . crossReacting*)(x, y)"),
    )
    print("Example 4.5 containment:", containment.summary())


if __name__ == "__main__":
    main()
