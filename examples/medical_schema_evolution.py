"""Schema evolution of the medical knowledge graph (Example 1.1 end to end).

This example uses the packaged workload to: generate a random instance of the
old schema, migrate it, type-check the migration, show how a *faulty*
migration is caught statically before any data is touched, and produce an
explicit finite counterexample for the faulty variant.
"""

from repro.analysis import type_check
from repro.containment import ContainmentSolver, find_counterexample
from repro.rpq import UC2RPQ, parse_c2rpq
from repro.schema import check_conformance
from repro.workloads import medical


def main() -> None:
    source, target = medical.source_schema(), medical.target_schema()
    good, broken = medical.migration(), medical.broken_migration()

    # migrate a random instance
    instance = medical.random_instance(vaccines=6, antigens=9, pathogens=4, seed=42)
    migrated = good.apply(instance)
    print("migrated instance:", migrated.node_count(), "nodes,", migrated.edge_count(), "edges")
    print(check_conformance(migrated, target).summary())

    # static guarantees: the good migration is well-typed, the broken one is not
    print()
    print(type_check(good, source, target).summary())
    print()
    report = type_check(broken, source, target)
    print(report.summary())

    # the static verdict is backed by a concrete counterexample: a conforming
    # input graph on which the broken migration violates the target schema
    print()
    left = UC2RPQ.from_query(parse_c2rpq("vaccines(x) := Vaccine(x)"))
    right = UC2RPQ.from_query(
        parse_c2rpq("targeted(x) := (designTarget . crossReacting . crossReacting*)(x, y)")
    )
    counterexample = find_counterexample(left, right, source, max_nodes=3)
    if counterexample is not None:
        print("counterexample input (vaccine without any strict cross-reaction):")
        print(counterexample.graph.describe())
        bad_output = broken.apply(counterexample.graph)
        print(check_conformance(bad_output, target).summary())

    # the underlying containment test of Example 4.5
    solver = ContainmentSolver(source)
    result = solver.contains(
        parse_c2rpq("p(x) := Vaccine(x)"),
        parse_c2rpq("q(x) := (designTarget . crossReacting . crossReacting*)(x, y)"),
    )
    print()
    print("broken 'targets' rule covers every vaccine?", result.contained)


if __name__ == "__main__":
    main()
